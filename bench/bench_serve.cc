// Serving bench and CI serve-smoke binary (DESIGN.md §10). Two modes,
// run as separate processes so the serve leg proves a cold-start reload:
//
//   --mode=train   train ContraTopic on the preset, save a frozen
//                  checkpoint (--checkpoint=...), and dump the expected
//                  test-set theta next to it (<checkpoint>.expected).
//   --mode=serve   in a fresh process, load the checkpoint into an
//                  InferenceEngine, replay the test documents (with
//                  repeats, so the cache and the batcher both see
//                  traffic), and verify every served theta is
//                  bitwise-identical to the training process's.
//
// Both modes stream run telemetry (--telemetry=...) ending in a
// manifest; serve mode also emits a "serve_stats" record that
// scripts/check_telemetry.py --mode=serve validates. The exit code is
// non-zero on any bitwise mismatch, serving error, or telemetry gap.
//
// Usage: bench_serve --mode=train|serve [--preset=20ng-sim]
//        [--checkpoint=bench_results/serve_<preset>.ckpt]
//        [--queries=100] [--telemetry=<path>] [--threads=N]

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"
#include "util/trace.h"

using namespace contratopic;  // NOLINT

namespace {

// The sidecar holding the training process's InferTheta over the test
// split: rows, cols, then row-major floats.
util::Status WriteExpectedTheta(const tensor::Tensor& theta,
                                const std::string& path) {
  util::BinaryWriter writer(path);
  writer.WriteU32(static_cast<uint32_t>(theta.rows()));
  writer.WriteU32(static_cast<uint32_t>(theta.cols()));
  writer.WriteBytes(theta.data(),
                    static_cast<size_t>(theta.numel()) * sizeof(float));
  return writer.Close();
}

util::StatusOr<tensor::Tensor> ReadExpectedTheta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open expected-theta file " + path);
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  util::BinaryReader reader(bytes.data(), bytes.size());
  const uint32_t rows = reader.ReadU32();
  const uint32_t cols = reader.ReadU32();
  if (!reader.ok() || rows == 0 || cols == 0 ||
      reader.remaining() !=
          static_cast<size_t>(rows) * cols * sizeof(float)) {
    return util::Status::DataLoss("malformed expected-theta file " + path);
  }
  tensor::Tensor theta(rows, cols);
  std::memcpy(theta.data(), bytes.data() + (bytes.size() - reader.remaining()),
              reader.remaining());
  return theta;
}

serve::InferenceEngine::BowDoc ToBowDoc(const text::Document& doc) {
  serve::InferenceEngine::BowDoc bow;
  bow.reserve(doc.entries.size());
  for (const auto& e : doc.entries) bow.emplace_back(e.word_id, e.count);
  return bow;
}

int RunTrain(const bench::ExperimentContext& context,
             const bench::BenchConfig& bench_config,
             const std::string& checkpoint_path,
             util::RunTelemetry* telemetry) {
  core::ContraTopicOptions options;
  options.lambda = bench::LambdaForDataset(context.config.name);
  auto model = core::CreateModel("contratopic", bench_config.train,
                                 context.embeddings, options);
  bench::AttachTelemetry(model.get(), telemetry, context);

  double train_seconds = 0.0;
  {
    util::TraceSpan span("train");
    model->Train(context.dataset.train);
    train_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("train", train_seconds);

  util::Status saved = serve::SaveCheckpoint(
      *model, context.dataset.train.vocab(), checkpoint_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "FAIL: SaveCheckpoint: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  const tensor::Tensor theta = model->InferTheta(context.dataset.test);
  util::Status dumped =
      WriteExpectedTheta(theta, checkpoint_path + ".expected");
  if (!dumped.ok()) {
    std::fprintf(stderr, "FAIL: expected-theta dump: %s\n",
                 dumped.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint=%s (expected theta: %lld x %lld)\n",
              checkpoint_path.c_str(),
              static_cast<long long>(theta.rows()),
              static_cast<long long>(theta.cols()));
  telemetry->RecordManifest({{"train_seconds", train_seconds},
                             {"test_docs", double(theta.rows())}});
  return 0;
}

int RunServe(const bench::ExperimentContext& context, int num_queries,
             const std::string& checkpoint_path,
             util::RunTelemetry* telemetry) {
  double load_seconds = 0.0;
  util::StatusOr<std::unique_ptr<serve::InferenceEngine>> engine = [&] {
    util::TraceSpan span("load_checkpoint");
    auto loaded = serve::InferenceEngine::Load(checkpoint_path);
    load_seconds = span.ElapsedSeconds();
    return loaded;
  }();
  if (!engine.ok()) {
    std::fprintf(stderr, "FAIL: Load: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  telemetry->RecordStage("load_checkpoint", load_seconds);

  // The training process's InferTheta output is the bitwise oracle.
  // bench_serve --mode=train writes it; checkpoints produced elsewhere
  // (e.g. bench_parallel_training --checkpoint=) have none, and then the
  // replay only verifies that every query serves successfully.
  util::StatusOr<tensor::Tensor> expected =
      ReadExpectedTheta(checkpoint_path + ".expected");
  if (!expected.ok()) {
    std::fprintf(stderr,
                 "note: no bitwise oracle (%s); serving without the "
                 "equivalence check\n",
                 expected.status().ToString().c_str());
  }

  // Replay test documents round-robin so every query has a known-good
  // answer from the training process. The cycle is capped at half the
  // query budget so the second pass over a document is a cache hit and
  // the bench exercises both paths.
  if (expected.ok() &&
      expected->rows() != context.dataset.test.num_docs()) {
    std::fprintf(stderr,
                 "FAIL: oracle has %lld rows but the test split has %d "
                 "docs; rerun both modes with the same --preset/--docs\n",
                 static_cast<long long>(expected->rows()),
                 context.dataset.test.num_docs());
    return 1;
  }
  const int num_docs = context.dataset.test.num_docs();
  const int cycle = std::min(num_docs, std::max(1, num_queries / 2));
  int64_t mismatched = 0;
  int served = 0;
  double serve_seconds = 0.0;
  {
    util::TraceSpan span("serve_queries");
    for (int q = 0; q < num_queries; ++q) {
      const int d = q % cycle;
      const text::Document& doc = context.dataset.test.doc(d);
      if (doc.entries.empty()) continue;
      serve::InferenceEngine::ThetaResult theta =
          (*engine)->InferTheta(ToBowDoc(doc));
      if (!theta.ok()) {
        std::fprintf(stderr, "FAIL: query %d: %s\n", q,
                     theta.status().ToString().c_str());
        return 1;
      }
      ++served;
      if (expected.ok() &&
          std::memcmp(theta->data(), expected->row(d),
                      theta->size() * sizeof(float)) != 0) {
        ++mismatched;
      }
    }
    serve_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("serve_queries", serve_seconds,
                         {{"queries", double(served)},
                          {"bitwise_mismatches", double(mismatched)}});

  // Topic browsing endpoints must also work on the cold-started engine.
  for (int k = 0; k < (*engine)->num_topics(); ++k) {
    auto words = (*engine)->TopicTopWords(k, 10);
    if (!words.ok() || words->empty()) {
      std::fprintf(stderr, "FAIL: TopicTopWords(%d)\n", k);
      return 1;
    }
  }
  auto top = (*engine)->TopTopics(ToBowDoc(context.dataset.test.doc(0)), 3);
  if (!top.ok()) {
    std::fprintf(stderr, "FAIL: TopTopics: %s\n",
                 top.status().ToString().c_str());
    return 1;
  }

  (*engine)->EmitTelemetry(telemetry);
  const serve::InferenceEngine::Stats stats = (*engine)->stats();

  util::TableWriter table({"Metric", "Value"});
  table.AddRow("queries", {double(served)});
  table.AddRow("bitwise_mismatches", {double(mismatched)});
  table.AddRow("cache_hits", {double(stats.cache_hits)});
  table.AddRow("batches", {double(stats.batches)});
  table.AddRow("max_batch_size", {double(stats.max_batch_size_seen)});
  table.AddRow("load_seconds", {load_seconds});
  table.AddRow("serve_seconds", {serve_seconds});
  bench::EmitTable(
      util::StrFormat("Cold-start serving of %s", checkpoint_path.c_str()),
      "serve_" + context.config.name, table);

  telemetry->RecordManifest({{"queries", double(served)},
                             {"bitwise_mismatches", double(mismatched)},
                             {"cache_hits", double(stats.cache_hits)},
                             {"load_seconds", load_seconds}});

  if (mismatched > 0) {
    std::fprintf(stderr,
                 "FAIL: %lld of %d served thetas differ from the training "
                 "process\n",
                 static_cast<long long>(mismatched), served);
    return 1;
  }
  if (stats.cache_hits == 0 && num_queries > cycle) {
    std::fprintf(stderr, "FAIL: repeated queries produced no cache hits\n");
    return 1;
  }
  std::printf("OK: %d queries served%s (cache_hits=%lld)\n", served,
              expected.ok() ? " bitwise-identical" : "",
              static_cast<long long>(stats.cache_hits));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  const std::string mode = flags.GetString("mode", "train");
  const std::string dataset_name =
      flags.GetString("preset", flags.GetString("dataset", "20ng-sim"));
  const int num_queries = flags.GetInt("queries", 100);

  ::mkdir(bench::kResultsDir, 0755);
  const std::string checkpoint_path =
      bench_config.checkpoint_path.empty()
          ? std::string(bench::kResultsDir) + "/serve_" + dataset_name +
                ".ckpt"
          : bench_config.checkpoint_path;

  const bench::ExperimentContext context =
      bench::LoadExperiment(dataset_name, bench_config.doc_scale);

  util::RunTelemetry::Options telemetry_options;
  telemetry_options.path =
      bench_config.telemetry_path.empty()
          ? std::string(bench::kResultsDir) + "/telemetry_serve_" +
                dataset_name + "_" + mode + ".jsonl"
          : bench_config.telemetry_path;
  util::RunTelemetry telemetry(telemetry_options);
  util::MetricsRegistry::Global().Reset();
  util::Tracer::Global().Reset();
  telemetry.RecordRunStart(
      "serve_bench[" + mode + "]",
      {{"dataset", dataset_name},
       {"mode", mode},
       {"checkpoint", checkpoint_path},
       {"queries", std::to_string(num_queries)},
       {"epochs", std::to_string(bench_config.train.epochs)},
       {"topics", std::to_string(bench_config.train.num_topics)},
       {"seed", std::to_string(bench_config.train.seed)}});

  if (mode == "train") {
    return RunTrain(context, bench_config, checkpoint_path, &telemetry);
  }
  if (mode == "serve") {
    return RunServe(context, num_queries, checkpoint_path, &telemetry);
  }
  std::fprintf(stderr, "unknown --mode=%s (want train|serve)\n",
               mode.c_str());
  return 2;
}
