// Parallel-engine bench: trains the same ContraTopic model at 1 thread and
// at --threads=N (default 4), verifies the runs are bitwise identical
// (beta, test theta, final loss — the determinism contract of DESIGN.md
// "Parallelism & determinism"), and reports the wall-clock speedup for
// each pipeline stage (NPMI precompute, training, inference, evaluation).
//
// Doubles as the CI bench-smoke binary (DESIGN.md §9): both legs stream
// run telemetry — per-epoch loss / l_con / NPMI / diversity records and
// per-stage wall time — into one JSONL file ending in a run manifest, and
// the exit code is non-zero when any tier-1 metric is non-finite, when
// the manifest was not written, or when the legs disagree bitwise.
// scripts/check_telemetry.py validates the artifact again from the
// outside.
//
// Usage: bench_parallel_training [--preset=20ng-sim] [--threads=4]
//        [--epochs=...] [--docs=...] [--telemetry=<path>]
// Writes bench_results/parallel_training_<preset>.tsv and
// bench_results/telemetry_<preset>.jsonl (override with --telemetry=).

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>

#include "bench/harness.h"
#include "eval/clustering.h"
#include "serve/checkpoint.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

using namespace contratopic;  // NOLINT

namespace {

// One full pipeline run at a fixed pool size, with per-stage timings.
struct LegResult {
  int threads = 0;
  double npmi_seconds = 0.0;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  double eval_seconds = 0.0;
  float final_loss = 0.0f;
  double mean_coherence = 0.0;
  double diversity = 0.0;
  tensor::Tensor beta;
  tensor::Tensor theta;
};

LegResult RunLeg(int threads, const bench::ExperimentContext& context,
                 const bench::BenchConfig& bench_config,
                 util::RunTelemetry* telemetry) {
  util::ThreadPool::SetGlobalNumThreads(threads);
  LegResult leg;
  leg.threads = util::ThreadPool::Global().num_threads();

  telemetry->RecordRunStart(
      util::StrFormat("parallel_training[threads=%d]", leg.threads),
      {{"dataset", context.config.name},
       {"threads", std::to_string(leg.threads)},
       {"epochs", std::to_string(bench_config.train.epochs)},
       {"topics", std::to_string(bench_config.train.num_topics)},
       {"seed", std::to_string(bench_config.train.seed)}});

  {
    util::TraceSpan span("npmi_precompute");
    const eval::NpmiMatrix npmi =
        eval::NpmiMatrix::Compute(context.dataset.train);
    leg.npmi_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("npmi_precompute", leg.npmi_seconds);

  core::ContraTopicOptions options;
  options.lambda = bench::LambdaForDataset(context.config.name);
  auto model = core::CreateModel("contratopic", bench_config.train,
                                 context.embeddings, options);
  bench::AttachTelemetry(model.get(), telemetry, context);

  {
    util::TraceSpan span("train");
    const topicmodel::TrainStats stats = model->Train(context.dataset.train);
    leg.train_seconds = span.ElapsedSeconds();
    leg.final_loss = stats.final_loss;
  }
  leg.beta = model->Beta();
  // With --checkpoint=, freeze the trained model for later cold-start
  // serving (bench_serve --mode=serve). Both legs write it; the file is
  // bitwise-identical either way, by the determinism contract.
  if (!bench_config.checkpoint_path.empty()) {
    const util::Status saved = serve::SaveCheckpoint(
        *model, context.dataset.train.vocab(), bench_config.checkpoint_path);
    CHECK(saved.ok()) << saved;
  }
  telemetry->RecordStage("train", leg.train_seconds,
                         {{"final_loss", leg.final_loss}});

  {
    util::TraceSpan span("infer_theta");
    leg.theta = model->InferTheta(context.dataset.test);
    leg.infer_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("infer_theta", leg.infer_seconds);

  {
    util::TraceSpan span("eval_coherence");
    const std::vector<double> coherence =
        eval::PerTopicCoherence(leg.beta, *context.test_npmi, 10);
    for (double c : coherence) leg.mean_coherence += c;
    if (!coherence.empty()) {
      leg.mean_coherence /= static_cast<double>(coherence.size());
    }
    leg.diversity =
        eval::DiversityAtProportion(leg.beta, coherence, /*proportion=*/1.0);
    leg.eval_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("eval_coherence", leg.eval_seconds,
                         {{"npmi", leg.mean_coherence},
                          {"diversity", leg.diversity}});
  return leg;
}

int64_t CountMismatches(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return -1;
  int64_t mismatches = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (a.data()[i] != b.data()[i]) ++mismatches;  // bitwise, not approximate
  }
  return mismatches;
}

// The tier-1 metric gate: a NaN/Inf anywhere in the headline numbers
// means the run is broken even if it "completed".
bool AllFinite(const LegResult& leg) {
  return std::isfinite(leg.final_loss) && std::isfinite(leg.mean_coherence) &&
         std::isfinite(leg.diversity) && std::isfinite(leg.train_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  // --preset is the canonical spelling (matches text::PresetByName);
  // --dataset stays as an alias for older scripts.
  const std::string dataset_name =
      flags.GetString("preset", flags.GetString("dataset", "20ng-sim"));
  const int parallel_threads = flags.GetInt("threads", 4);
  const unsigned hw = std::thread::hardware_concurrency();

  const bench::ExperimentContext context =
      bench::LoadExperiment(dataset_name, bench_config.doc_scale);
  std::printf("dataset=%s docs=%d vocab=%d hardware_threads=%u\n",
              dataset_name.c_str(), context.config.num_docs,
              static_cast<int>(context.dataset.train.vocab().size()), hw);

  ::mkdir(bench::kResultsDir, 0755);  // the sink opens its file eagerly
  util::RunTelemetry::Options telemetry_options;
  telemetry_options.path =
      bench_config.telemetry_path.empty()
          ? std::string(bench::kResultsDir) + "/telemetry_" + dataset_name +
                ".jsonl"
          : bench_config.telemetry_path;
  util::RunTelemetry telemetry(telemetry_options);

  // Scope the manifest's registry/tracer snapshot to this bench run.
  util::MetricsRegistry::Global().Reset();
  util::Tracer::Global().Reset();

  const LegResult serial = RunLeg(1, context, bench_config, &telemetry);
  const LegResult parallel =
      RunLeg(parallel_threads, context, bench_config, &telemetry);
  util::ThreadPool::SetGlobalNumThreads(0);  // restore hardware default

  // Determinism contract: both legs must agree bitwise.
  const int64_t beta_diff = CountMismatches(serial.beta, parallel.beta);
  const int64_t theta_diff = CountMismatches(serial.theta, parallel.theta);
  const bool loss_equal = serial.final_loss == parallel.final_loss;
  const bool coherence_equal =
      serial.mean_coherence == parallel.mean_coherence;
  const bool identical =
      beta_diff == 0 && theta_diff == 0 && loss_equal && coherence_equal;
  const bool finite = AllFinite(serial) && AllFinite(parallel);

  util::TableWriter table({"Stage", "1 thread (s)",
                           util::StrFormat("%d threads (s)", parallel.threads),
                           "speedup"});
  const auto add_stage = [&](const char* name, double s1, double sn) {
    table.AddRow(name, {s1, sn, sn > 0 ? s1 / sn : 0.0});
  };
  add_stage("npmi_precompute", serial.npmi_seconds, parallel.npmi_seconds);
  add_stage("train", serial.train_seconds, parallel.train_seconds);
  add_stage("infer_theta", serial.infer_seconds, parallel.infer_seconds);
  add_stage("eval_coherence", serial.eval_seconds, parallel.eval_seconds);
  add_stage("total", serial.npmi_seconds + serial.train_seconds +
                         serial.infer_seconds + serial.eval_seconds,
            parallel.npmi_seconds + parallel.train_seconds +
                parallel.infer_seconds + parallel.eval_seconds);
  table.AddRow("bitwise_identical",
               {identical ? 1.0 : 0.0, identical ? 1.0 : 0.0, 1.0});
  bench::EmitTable(
      util::StrFormat("Parallel training engine, 1 vs %d threads on %s",
                      parallel.threads, dataset_name.c_str()),
      "parallel_training_" + dataset_name, table);

  telemetry.RecordManifest(
      {{"threads_serial", static_cast<double>(serial.threads)},
       {"threads_parallel", static_cast<double>(parallel.threads)},
       {"final_loss", serial.final_loss},
       {"npmi", serial.mean_coherence},
       {"diversity", serial.diversity},
       {"beta_mismatches", static_cast<double>(beta_diff)},
       {"theta_mismatches", static_cast<double>(theta_diff)},
       {"bitwise_identical", identical ? 1.0 : 0.0},
       {"metrics_finite", finite ? 1.0 : 0.0}});
  const util::Status telemetry_status = telemetry.Flush();
  const bool telemetry_ok =
      telemetry_status.ok() && telemetry.manifest_written();
  std::printf("[telemetry: %s%s]\n", telemetry_options.path.c_str(),
              telemetry_ok ? "" : " WRITE FAILED");

  std::printf(
      "\ndeterminism: beta mismatches=%lld theta mismatches=%lld "
      "loss %s coherence %s -> %s\n",
      static_cast<long long>(beta_diff), static_cast<long long>(theta_diff),
      loss_equal ? "equal" : "DIFFERS",
      coherence_equal ? "equal" : "DIFFERS",
      identical ? "BITWISE IDENTICAL" : "MISMATCH");
  if (!finite) std::printf("metric gate: NON-FINITE tier-1 metric\n");
  std::printf(
      "note: speedup is bounded by the host's %u hardware thread(s); on a "
      "single-core host both legs time-slice one core and speedup ~1.\n",
      hw);
  return identical && finite && telemetry_ok ? 0 : 1;
}
