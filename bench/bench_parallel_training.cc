// Parallel-engine bench: trains the same ContraTopic model at 1 thread and
// at --threads=N (default 4), verifies the runs are bitwise identical
// (beta, test theta, final loss — the determinism contract of DESIGN.md
// "Parallelism & determinism"), and reports the wall-clock speedup for
// each pipeline stage (NPMI precompute, training, inference, evaluation).
//
// Doubles as the CI bench-smoke binary (DESIGN.md §9): both legs stream
// run telemetry — per-epoch loss / l_con / NPMI / diversity records and
// per-stage wall time — into one JSONL file ending in a run manifest, and
// the exit code is non-zero when any tier-1 metric is non-finite, when
// the manifest was not written, or when the legs disagree bitwise.
// scripts/check_telemetry.py validates the artifact again from the
// outside.
//
// Chaos mode (DESIGN.md §11): --kill-at-epoch=N trains a third leg with
// epoch-boundary auto-checkpoints, one injected NaN batch (rolled back
// by the guard rails), and an injected "train.kill" inside epoch N;
// --resume reads the checkpoint that interrupted run left behind,
// finishes training, and must end bitwise identical to the
// uninterrupted serial leg. The chaos pass also drives an
// InferenceEngine through injected "serve.batch" faults so the
// fault.injected / train.rollbacks / serve.retries / serve.degraded
// counters land in the manifest (validated by
// check_telemetry.py --mode=faults).
//
// Distributed phase (DESIGN.md §13): --workers=N trains the same model
// through dist::DataParallelTrainer at every power-of-two worker count up
// to N, all on one fixed shard grid, and demands bitwise-identical beta /
// theta / loss / coherence across worker counts — the process-count
// invariance contract. --dist-chaos adds a leg that kills rank 1
// mid-epoch via the "dist.worker_kill.rank1" fault site and requires the
// auto-restarted run to match the uninterrupted legs bit for bit. The
// scaling table lands in bench_results/dist_scaling_<preset>.tsv and any
// mismatch makes the exit code non-zero.
//
// Engine phase (DESIGN.md §14): --engine=both (the default) adds two legs
// that train under the graph-compiled execution engine (CT_EXEC_ENGINE
// semantics via ScopedExecEngine) at 1 and --threads threads, demands
// bitwise identity with the tape baseline (beta / theta / loss /
// coherence), and reports per-step wall time, per-step heap allocations
// (the >=10x arena gate, enforced by the exit code), pool hits, fused ops,
// hoist hits, and peak arena bytes. The comparison table lands in
// bench_results/graph_engine_<preset>.tsv. --engine=tape skips the phase.
//
// Model axis: --model=<zoo name> (default contratopic) points every leg —
// serial/parallel, graph, chaos, distributed — at another model from
// core::CreateModel, so the whole bitwise gate battery runs against any
// zoo member (the model-zoo invariance contract, e.g. --model=clntm or
// --model=tsctm). --loss-weighting=moo switches neural models from the
// fixed lambda to deterministic multi-objective gradient-norm weights
// (topicmodel::LossWeighting::kMoo); every determinism gate must hold
// there too.
//
// Usage: bench_parallel_training [--preset=20ng-sim] [--threads=4]
//        [--epochs=...] [--docs=...] [--telemetry=<path>]
//        [--kill-at-epoch=N] [--resume] [--workers=N] [--dist-chaos]
//        [--engine=both|tape|graph] [--model=<zoo name>]
//        [--loss-weighting=fixed|moo]
// Writes bench_results/parallel_training_<run>.tsv and
// bench_results/telemetry_<run>.jsonl (override with --telemetry=),
// where <run> is the preset plus non-default model/weighting tags.

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "dist/trainer.h"
#include "tensor/arena.h"
#include "tensor/engine.h"
#include "tensor/graph.h"
#include "eval/clustering.h"
#include "serve/checkpoint.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "serve/engine.h"
#include "topicmodel/neural_base.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

using namespace contratopic;  // NOLINT

namespace {

// One full pipeline run at a fixed pool size, with per-stage timings.
struct LegResult {
  tensor::ExecEngine engine = tensor::ExecEngine::kTape;
  int threads = 0;
  double npmi_seconds = 0.0;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  double eval_seconds = 0.0;
  float final_loss = 0.0f;
  double mean_coherence = 0.0;
  double diversity = 0.0;
  tensor::Tensor beta;
  tensor::Tensor theta;
  // Training-stage allocation accounting (the arena gate) and, for the
  // graph engine, the session's execution stats. `total_steps` covers the
  // whole run (for step timing); `train_steps` is the steady-state alloc
  // window, which excludes the first (pool warm-up) epoch when possible.
  int total_steps = 1;
  int train_steps = 1;
  uint64_t train_heap_allocs = 0;
  uint64_t train_pool_hits = 0;
  graph::ExecStats graph_stats;
};

// Builds the model under bench (--model=) with the dataset-appropriate
// ContraTopic options (ignored by non-contratopic names) and applies the
// --loss-weighting axis to every neural model.
std::unique_ptr<topicmodel::TopicModel> BuildBenchModel(
    const bench::ExperimentContext& context,
    const bench::BenchConfig& bench_config) {
  core::ContraTopicOptions options;
  options.lambda = bench::LambdaForDataset(context.config.name);
  auto model = core::CreateModel(bench_config.model, bench_config.train,
                                 context.embeddings, options);
  if (auto* neural =
          dynamic_cast<topicmodel::NeuralTopicModel*>(model.get())) {
    neural->SetLossWeighting(bench_config.loss_weighting);
  }
  return model;
}

// The preset plus non-default axis tags; names every result artifact so
// per-model runs don't overwrite the default contratopic tables.
std::string RunTag(const std::string& dataset_name,
                   const bench::BenchConfig& bench_config) {
  std::string tag = dataset_name;
  if (bench_config.model != "contratopic") tag += "_" + bench_config.model;
  if (bench_config.loss_weighting == topicmodel::LossWeighting::kMoo) {
    tag += "_moo";
  }
  return tag;
}

LegResult RunLeg(tensor::ExecEngine engine, int threads,
                 const bench::ExperimentContext& context,
                 const bench::BenchConfig& bench_config,
                 util::RunTelemetry* telemetry) {
  tensor::ScopedExecEngine scoped_engine(engine);
  util::ThreadPool::SetGlobalNumThreads(threads);
  LegResult leg;
  leg.engine = engine;
  leg.threads = util::ThreadPool::Global().num_threads();

  telemetry->RecordRunStart(
      util::StrFormat("parallel_training[engine=%s,threads=%d]",
                      tensor::ExecEngineName(engine), leg.threads),
      {{"dataset", context.config.name},
       {"model", bench_config.model},
       {"loss_weighting",
        bench_config.loss_weighting == topicmodel::LossWeighting::kMoo
            ? "moo"
            : "fixed"},
       {"engine", tensor::ExecEngineName(engine)},
       {"threads", std::to_string(leg.threads)},
       {"epochs", std::to_string(bench_config.train.epochs)},
       {"topics", std::to_string(bench_config.train.num_topics)},
       {"seed", std::to_string(bench_config.train.seed)}});

  {
    util::TraceSpan span("npmi_precompute");
    const eval::NpmiMatrix npmi =
        eval::NpmiMatrix::Compute(context.dataset.train);
    leg.npmi_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("npmi_precompute", leg.npmi_seconds);

  auto model = BuildBenchModel(context, bench_config);
  bench::AttachTelemetry(model.get(), telemetry, context);

  const int steps_per_epoch =
      std::max<int>(1, context.dataset.train.num_docs() /
                           std::max(1, bench_config.train.batch_size));
  leg.total_steps = bench_config.train.epochs * steps_per_epoch;
  leg.train_steps = leg.total_steps;

  // Steady-state allocation accounting for the arena gate: the buffer
  // pool is cold during the first epoch (every acquisition heap-allocates
  // while the arena grows to the step's working set), so when the run has
  // more than one epoch we snapshot the counters at the first epoch
  // boundary — via the auto-checkpoint hook with a sink that saves
  // nothing — and attribute only the remaining epochs to the per-step
  // rate. The hook runs identically on every leg, so the tape/graph
  // comparison stays apples-to-apples.
  auto* neural = dynamic_cast<topicmodel::NeuralTopicModel*>(model.get());
  tensor::AllocStats allocs_warm;
  int epoch_boundaries_seen = 0;
  if (neural != nullptr) {
    neural->SetAutoCheckpoint(
        /*every_steps=*/0, [&](const topicmodel::TrainingState&) {
          if (++epoch_boundaries_seen == 1) {
            allocs_warm = tensor::GlobalAllocStats();
          }
          return util::Status::OK();
        });
  }

  {
    util::TraceSpan span("train");
    const tensor::AllocStats allocs_before = tensor::GlobalAllocStats();
    const topicmodel::TrainStats stats = model->Train(context.dataset.train);
    const tensor::AllocStats allocs_after = tensor::GlobalAllocStats();
    leg.train_seconds = span.ElapsedSeconds();
    leg.final_loss = stats.final_loss;
    if (epoch_boundaries_seen >= 1 && bench_config.train.epochs > 1) {
      leg.train_steps = (bench_config.train.epochs - 1) * steps_per_epoch;
      leg.train_heap_allocs =
          allocs_after.heap_allocs - allocs_warm.heap_allocs;
      leg.train_pool_hits = allocs_after.pool_hits - allocs_warm.pool_hits;
    } else {
      leg.train_heap_allocs =
          allocs_after.heap_allocs - allocs_before.heap_allocs;
      leg.train_pool_hits = allocs_after.pool_hits - allocs_before.pool_hits;
    }
    if (engine == tensor::ExecEngine::kGraph) {
      // The training loop's GraphSession publishes its stats on destruction,
      // which happens when Train() returns.
      leg.graph_stats = graph::LastSessionStats();
    }
  }
  leg.beta = model->Beta();
  // With --checkpoint=, freeze the trained model for later cold-start
  // serving (bench_serve --mode=serve). Both legs write it; the file is
  // bitwise-identical either way, by the determinism contract.
  if (!bench_config.checkpoint_path.empty()) {
    const util::Status saved = serve::SaveCheckpoint(
        *model, context.dataset.train.vocab(), bench_config.checkpoint_path);
    CHECK(saved.ok()) << saved;
  }
  telemetry->RecordStage("train", leg.train_seconds,
                         {{"final_loss", leg.final_loss}});

  {
    util::TraceSpan span("infer_theta");
    leg.theta = model->InferTheta(context.dataset.test);
    leg.infer_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("infer_theta", leg.infer_seconds);

  {
    util::TraceSpan span("eval_coherence");
    const std::vector<double> coherence =
        eval::PerTopicCoherence(leg.beta, *context.test_npmi, 10);
    for (double c : coherence) leg.mean_coherence += c;
    if (!coherence.empty()) {
      leg.mean_coherence /= static_cast<double>(coherence.size());
    }
    leg.diversity =
        eval::DiversityAtProportion(leg.beta, coherence, /*proportion=*/1.0);
    leg.eval_seconds = span.ElapsedSeconds();
  }
  telemetry->RecordStage("eval_coherence", leg.eval_seconds,
                         {{"npmi", leg.mean_coherence},
                          {"diversity", leg.diversity}});
  return leg;
}

int64_t CountMismatches(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return -1;
  int64_t mismatches = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (a.data()[i] != b.data()[i]) ++mismatches;  // bitwise, not approximate
  }
  return mismatches;
}

// The tier-1 metric gate: a NaN/Inf anywhere in the headline numbers
// means the run is broken even if it "completed".
bool AllFinite(const LegResult& leg) {
  return std::isfinite(leg.final_loss) && std::isfinite(leg.mean_coherence) &&
         std::isfinite(leg.diversity) && std::isfinite(leg.train_seconds);
}

// ---- Chaos phase (--kill-at-epoch= / --resume) ---------------------------

std::string ResumeCheckpointPath(const std::string& dataset_name) {
  return std::string(bench::kResultsDir) + "/resume_" + dataset_name +
         ".ckpt";
}

// Trains the contratopic config with epoch-boundary auto-checkpoints and
// two injected faults: one NaN batch loss (which the guard rails must
// roll back) and a "train.kill" inside epoch `kill_epoch` (which stands
// in for a crash). Returns true when the run was interrupted with a
// resumable checkpoint left on disk.
bool RunKillLeg(int kill_epoch, const bench::ExperimentContext& context,
                const bench::BenchConfig& bench_config,
                util::RunTelemetry* telemetry) {
  const std::string path = ResumeCheckpointPath(context.config.name);
  telemetry->RecordRunStart(
      util::StrFormat("fault_injection[kill_at_epoch=%d]", kill_epoch),
      {{"dataset", context.config.name},
       {"model", bench_config.model},
       {"kill_at_epoch", std::to_string(kill_epoch)},
       {"checkpoint", path}});

  auto model = BuildBenchModel(context, bench_config);
  auto* neural = dynamic_cast<topicmodel::NeuralTopicModel*>(model.get());
  CHECK(neural != nullptr) << "--kill-at-epoch needs a neural --model";
  bench::AttachTelemetry(model.get(), telemetry, context);
  neural->SetGuardRails(topicmodel::GuardRailOptions());
  neural->SetAutoCheckpoint(
      /*every_steps=*/0,  // 0 = at every epoch boundary
      [&](const topicmodel::TrainingState& state) {
        return serve::SaveTrainingCheckpoint(
            *neural, context.dataset.train.vocab(), state, path);
      });

  const int batch = bench_config.train.batch_size;
  // Mirrors text::BatchIterator::batches_per_epoch (floor with drop-last).
  const int steps_per_epoch =
      std::max(1, context.dataset.train.num_docs() / batch);
  util::FaultInjector& faults = util::FaultInjector::Global();
  util::FaultSpec nan_once;
  nan_once.every_nth = 2;  // corrupt the 2nd batch loss, then roll back
  nan_once.max_fires = 1;
  faults.Arm("train.loss_corrupt", nan_once);
  util::FaultSpec kill;
  // The kill site is consulted once per completed step (rolled-back
  // steps are replayed and consulted again, shifting the schedule by the
  // replay length), so this fires inside epoch `kill_epoch` — after at
  // least one epoch-boundary checkpoint for kill_epoch >= 2.
  kill.every_nth = kill_epoch * steps_per_epoch;
  kill.max_fires = 1;
  faults.Arm("train.kill", kill);

  const topicmodel::TrainStats stats = model->Train(context.dataset.train);
  faults.Reset();
  std::printf("chaos: kill leg -> %s (rollbacks=%d)\n",
              stats.status.ToString().c_str(), stats.rollbacks);
  if (!stats.interrupted) {
    std::printf("chaos: ERROR: the injected kill never fired\n");
    return false;
  }
  if (stats.rollbacks < 1) {
    std::printf("chaos: ERROR: the injected NaN was not rolled back\n");
    return false;
  }
  return true;
}

// Reads the interrupted run's checkpoint, finishes training from it, and
// compares the result bitwise against the uninterrupted reference leg —
// the crash-recovery contract of DESIGN.md §11.
bool RunResumeLeg(const bench::ExperimentContext& context,
                  const LegResult& reference, util::RunTelemetry* telemetry) {
  const std::string path = ResumeCheckpointPath(context.config.name);
  telemetry->RecordRunStart(
      "fault_injection[resume]",
      {{"dataset", context.config.name}, {"checkpoint", path}});
  auto checkpoint = serve::ReadCheckpoint(path);
  if (!checkpoint.ok()) {
    std::printf("chaos: ERROR: cannot read %s: %s\n", path.c_str(),
                checkpoint.status().ToString().c_str());
    return false;
  }
  if (!checkpoint->has_training_state) {
    std::printf("chaos: ERROR: %s carries no training state\n", path.c_str());
    return false;
  }
  auto resumed = serve::ResumeModel(*checkpoint);
  if (!resumed.ok()) {
    std::printf("chaos: ERROR: ResumeModel: %s\n",
                resumed.status().ToString().c_str());
    return false;
  }
  topicmodel::NeuralTopicModel& model = **resumed;
  bench::AttachTelemetry(&model, telemetry, context);
  const topicmodel::TrainStats stats =
      model.ResumeTraining(context.dataset.train, checkpoint->training_state);
  if (!stats.status.ok() || stats.interrupted) {
    std::printf("chaos: ERROR: resume failed: %s\n",
                stats.status.ToString().c_str());
    return false;
  }
  const int64_t beta_diff = CountMismatches(model.Beta(), reference.beta);
  const tensor::Tensor theta = model.InferTheta(context.dataset.test);
  const int64_t theta_diff = CountMismatches(theta, reference.theta);
  const bool loss_equal =
      static_cast<float>(stats.final_loss) == reference.final_loss;
  std::printf(
      "chaos: resume vs uninterrupted: beta mismatches=%lld "
      "theta mismatches=%lld loss %s\n",
      static_cast<long long>(beta_diff), static_cast<long long>(theta_diff),
      loss_equal ? "equal" : "DIFFERS");
  return beta_diff == 0 && theta_diff == 0 && loss_equal;
}

// Serving-side chaos: loads the resume checkpoint into an engine whose
// batches fail on an injected schedule, driving the retry and
// circuit-breaker paths so serve.retries / serve.degraded show up in the
// manifest counters. Count-based breaker + deterministic fault schedule
// fix the request-by-request outcome: request 0 exhausts its retries and
// opens the breaker, request 1 is fast-failed degraded, request 2 is the
// probe that recovers (after one more retry), request 3 is healthy.
bool RunServeChaos(const bench::ExperimentContext& context,
                   util::RunTelemetry* telemetry) {
  const std::string path = ResumeCheckpointPath(context.config.name);
  serve::InferenceEngine::Options options;
  options.retry.max_attempts = 2;
  options.retry.base_backoff_ms = 0.5;
  options.retry.max_backoff_ms = 2.0;
  options.breaker.failure_threshold = 1;
  options.breaker.probe_interval = 2;
  options.breaker.success_threshold = 1;
  auto engine = serve::InferenceEngine::Load(path, options);
  if (!engine.ok()) {
    std::printf("chaos: ERROR: engine load: %s\n",
                engine.status().ToString().c_str());
    return false;
  }
  util::FaultInjector& faults = util::FaultInjector::Global();
  util::FaultSpec flaky;
  flaky.every_nth = 1;
  flaky.max_fires = 3;  // request 0 fails twice, the probe fails once
  faults.Arm("serve.batch", flaky);

  const int vocab = static_cast<int>(context.dataset.train.vocab().size());
  util::TraceSpan span("serve_chaos");
  bool sequence_ok = true;
  for (int i = 0; i < 4; ++i) {
    const serve::InferenceEngine::BowDoc doc = {{i % vocab, 1},
                                                {(i + 7) % vocab, 2}};
    const auto theta = (*engine)->InferTheta(doc);
    const bool want_ok = i >= 2;
    if (theta.ok() != want_ok) {
      std::printf("chaos: ERROR: request %d %s but should have %s (%s)\n", i,
                  theta.ok() ? "succeeded" : "failed",
                  want_ok ? "succeeded" : "failed",
                  theta.status().ToString().c_str());
      sequence_ok = false;
    }
  }
  faults.Reset();
  const serve::InferenceEngine::Stats stats = (*engine)->stats();
  const bool healthy =
      (*engine)->health() == serve::InferenceEngine::HealthState::kHealthy;
  telemetry->RecordStage(
      "serve_chaos", span.ElapsedSeconds(),
      {{"retries", static_cast<double>(stats.retries)},
       {"degraded", static_cast<double>(stats.degraded)}});
  std::printf("chaos: serve leg -> retries=%lld degraded=%lld health=%s\n",
              static_cast<long long>(stats.retries),
              static_cast<long long>(stats.degraded),
              healthy ? "healthy" : "NOT RECOVERED");
  return sequence_ok && stats.retries >= 1 && stats.degraded >= 1 && healthy;
}

// ---- Distributed phase (--workers= / --dist-chaos) -----------------------

struct DistLegResult {
  int workers = 0;
  double train_seconds = 0.0;
  float final_loss = 0.0f;
  double mean_coherence = 0.0;
  tensor::Tensor beta;
  tensor::Tensor theta;
  bool ok = false;
};

// One distributed training run at `workers` ranks on the shared
// `num_shards` grid. Bench telemetry is NOT attached to the model here:
// the trainer forks, and an inherited JSONL sink would have every rank
// appending to the parent's file. Stage timings are recorded from the
// parent only.
DistLegResult RunDistLeg(int workers, int num_shards,
                         const bench::ExperimentContext& context,
                         const bench::BenchConfig& bench_config,
                         util::RunTelemetry* telemetry) {
  DistLegResult leg;
  leg.workers = workers;
  telemetry->RecordRunStart(
      util::StrFormat("dist_training[workers=%d]", workers),
      {{"dataset", context.config.name},
       {"model", bench_config.model},
       {"workers", std::to_string(workers)},
       {"shards", std::to_string(num_shards)},
       {"epochs", std::to_string(bench_config.train.epochs)}});

  auto model = BuildBenchModel(context, bench_config);
  auto* neural = dynamic_cast<topicmodel::NeuralTopicModel*>(model.get());
  CHECK(neural != nullptr) << "--workers needs a neural --model";

  dist::Options dist_options;
  dist_options.workers = workers;
  dist_options.num_shards = num_shards;
  dist::DataParallelTrainer trainer(neural, dist_options);

  util::TraceSpan span("dist_train");
  const util::StatusOr<topicmodel::TrainStats> stats =
      trainer.Train(context.dataset.train);
  leg.train_seconds = span.ElapsedSeconds();
  if (!stats.ok() || !stats->status.ok() || stats->interrupted) {
    std::printf("dist: ERROR: workers=%d run failed: %s\n", workers,
                (stats.ok() ? stats->status : stats.status())
                    .ToString()
                    .c_str());
    return leg;
  }
  leg.final_loss = static_cast<float>(stats->final_loss);
  leg.beta = neural->Beta();
  leg.theta = neural->InferTheta(context.dataset.test);
  const std::vector<double> coherence =
      eval::PerTopicCoherence(leg.beta, *context.test_npmi, 10);
  for (double c : coherence) leg.mean_coherence += c;
  if (!coherence.empty()) {
    leg.mean_coherence /= static_cast<double>(coherence.size());
  }
  telemetry->RecordStage(
      util::StrFormat("dist_train[workers=%d]", workers), leg.train_seconds,
      {{"final_loss", leg.final_loss}, {"npmi", leg.mean_coherence}});
  leg.ok = true;
  return leg;
}

// Chaos leg: rank 1 of a 2-worker group dies two steps into epoch 2 (the
// epoch-1 checkpoint already exists), the trainer auto-restarts from it,
// and the recovered run must match the uninterrupted reference leg
// bitwise — the crash-recovery half of the §13 contract.
bool RunDistChaosLeg(int num_shards, const bench::ExperimentContext& context,
                     const bench::BenchConfig& bench_config,
                     const DistLegResult& reference,
                     util::RunTelemetry* telemetry) {
  const int batch = bench_config.train.batch_size;
  const int steps_per_epoch =
      std::max(1, context.dataset.train.num_docs() / batch);
  const int total_steps = steps_per_epoch * bench_config.train.epochs;
  if (bench_config.train.epochs < 2 || total_steps < steps_per_epoch + 2) {
    std::printf(
        "dist: chaos leg skipped: %d epoch(s) x %d step(s) leaves no room "
        "for a mid-epoch-2 kill\n",
        bench_config.train.epochs, steps_per_epoch);
    return true;
  }
  const std::string path = std::string(bench::kResultsDir) + "/dist_chaos_" +
                           context.config.name + ".ckpt";
  telemetry->RecordRunStart("dist_chaos[workers=2]",
                            {{"dataset", context.config.name},
                             {"checkpoint", path},
                             {"shards", std::to_string(num_shards)}});

  auto model = BuildBenchModel(context, bench_config);
  auto* neural = dynamic_cast<topicmodel::NeuralTopicModel*>(model.get());
  CHECK(neural != nullptr) << "--dist-chaos needs a neural --model";

  util::FaultSpec kill;
  kill.every_nth = steps_per_epoch + 2;
  kill.max_fires = 1;
  util::FaultInjector::Global().Arm("dist.worker_kill.rank1", kill);

  dist::Options dist_options;
  dist_options.workers = 2;
  dist_options.num_shards = num_shards;
  dist_options.checkpoint_path = path;
  dist_options.vocab = &context.dataset.train.vocab();
  dist_options.auto_restart = true;
  dist::DataParallelTrainer trainer(neural, dist_options);

  util::TraceSpan span("dist_chaos");
  const util::StatusOr<topicmodel::TrainStats> stats =
      trainer.Train(context.dataset.train);
  util::FaultInjector::Global().Reset();
  std::remove(path.c_str());
  if (!stats.ok() || !stats->status.ok() || stats->interrupted) {
    std::printf("dist: chaos leg -> FAILED: %s\n",
                (stats.ok() ? stats->status : stats.status())
                    .ToString()
                    .c_str());
    return false;
  }
  if (trainer.restarts() != 1) {
    std::printf("dist: chaos leg -> ERROR: the injected kill never fired "
                "(restarts=%d)\n",
                trainer.restarts());
    return false;
  }
  const int64_t beta_diff = CountMismatches(neural->Beta(), reference.beta);
  const tensor::Tensor theta = neural->InferTheta(context.dataset.test);
  const int64_t theta_diff = CountMismatches(theta, reference.theta);
  const bool loss_equal =
      static_cast<float>(stats->final_loss) == reference.final_loss;
  telemetry->RecordStage("dist_chaos", span.ElapsedSeconds(),
                         {{"restarts", static_cast<double>(trainer.restarts())},
                          {"beta_mismatches", static_cast<double>(beta_diff)}});
  std::printf(
      "dist: chaos recovery vs uninterrupted: beta mismatches=%lld "
      "theta mismatches=%lld loss %s (restarts=%d)\n",
      static_cast<long long>(beta_diff), static_cast<long long>(theta_diff),
      loss_equal ? "equal" : "DIFFERS", trainer.restarts());
  return beta_diff == 0 && theta_diff == 0 && loss_equal;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  bench::BenchConfig bench_config = bench::ParseBenchConfig(flags);
  // --preset is the canonical spelling (matches text::PresetByName);
  // --dataset stays as an alias for older scripts.
  const std::string dataset_name =
      flags.GetString("preset", flags.GetString("dataset", "20ng-sim"));
  const int parallel_threads = flags.GetInt("threads", 4);
  const std::string engine_axis = flags.GetString("engine", "both");
  int kill_epoch = flags.GetInt("kill-at-epoch", 0);
  const bool resume = flags.GetBool("resume", false);
  const int dist_workers = flags.GetInt("workers", 0);
  const bool dist_chaos = flags.GetBool("dist-chaos", false);
  const unsigned hw = std::thread::hardware_concurrency();

  const bench::ExperimentContext context =
      bench::LoadExperiment(dataset_name, bench_config.doc_scale);
  const std::string run_tag = RunTag(dataset_name, bench_config);
  std::printf(
      "dataset=%s model=%s loss_weighting=%s docs=%d vocab=%d "
      "hardware_threads=%u\n",
      dataset_name.c_str(), bench_config.model.c_str(),
      bench_config.loss_weighting == topicmodel::LossWeighting::kMoo
          ? "moo"
          : "fixed",
      context.config.num_docs,
      static_cast<int>(context.dataset.train.vocab().size()), hw);

  ::mkdir(bench::kResultsDir, 0755);  // the sink opens its file eagerly
  util::RunTelemetry::Options telemetry_options;
  telemetry_options.path =
      bench_config.telemetry_path.empty()
          ? std::string(bench::kResultsDir) + "/telemetry_" + run_tag +
                ".jsonl"
          : bench_config.telemetry_path;
  util::RunTelemetry telemetry(telemetry_options);

  // Scope the manifest's registry/tracer snapshot to this bench run.
  util::MetricsRegistry::Global().Reset();
  util::Tracer::Global().Reset();

  const LegResult serial =
      RunLeg(tensor::ExecEngine::kTape, 1, context, bench_config, &telemetry);
  const LegResult parallel = RunLeg(tensor::ExecEngine::kTape,
                                    parallel_threads, context, bench_config,
                                    &telemetry);

  // Engine phase: the graph-compiled engine must reproduce the tape
  // bitwise and cut per-step heap allocations by >=10x via the arena
  // (DESIGN.md §14). Both gates feed the exit code. The 1-thread graph
  // leg runs first so the ambient pool size ends at parallel_threads,
  // matching what the chaos phase below expects.
  bool engine_ok = true;
  const bool engine_phase = engine_axis != "tape";
  std::vector<LegResult> graph_legs;
  if (engine_phase) {
    graph_legs.push_back(RunLeg(tensor::ExecEngine::kGraph, 1, context,
                                bench_config, &telemetry));
    graph_legs.push_back(RunLeg(tensor::ExecEngine::kGraph, parallel_threads,
                                context, bench_config, &telemetry));

    const auto allocs_per_step = [](const LegResult& leg) {
      return static_cast<double>(leg.train_heap_allocs) /
             std::max(1, leg.train_steps);
    };
    util::TableWriter engine_table(
        {"Engine[threads]", "train (s)", "step (ms)", "heap allocs/step",
         "pool hits/step", "peak arena (MB)", "ops fused", "hoist hits",
         "beta_mismatches", "theta_mismatches", "loss_equal"});
    bool engine_identical = true;
    double graph_allocs_per_step = 0.0;
    const auto add_engine_row = [&](const LegResult& leg) {
      const int64_t beta_diff = CountMismatches(serial.beta, leg.beta);
      const int64_t theta_diff = CountMismatches(serial.theta, leg.theta);
      const bool leg_loss_equal = leg.final_loss == serial.final_loss;
      const bool leg_identical =
          beta_diff == 0 && theta_diff == 0 && leg_loss_equal &&
          leg.mean_coherence == serial.mean_coherence;
      if (leg.engine == tensor::ExecEngine::kGraph) {
        engine_identical = engine_identical && leg_identical;
        graph_allocs_per_step =
            std::max(graph_allocs_per_step, allocs_per_step(leg));
      }
      engine_table.AddRow(
          util::StrFormat("%s[%d]", tensor::ExecEngineName(leg.engine),
                          leg.threads),
          {leg.train_seconds,
           leg.train_seconds * 1000.0 / std::max(1, leg.total_steps),
           allocs_per_step(leg),
           static_cast<double>(leg.train_pool_hits) /
               std::max(1, leg.train_steps),
           static_cast<double>(leg.graph_stats.peak_arena_bytes) /
               (1024.0 * 1024.0),
           static_cast<double>(leg.graph_stats.ops_fused),
           static_cast<double>(leg.graph_stats.hoist_hits),
           static_cast<double>(beta_diff), static_cast<double>(theta_diff),
           leg_loss_equal ? 1.0 : 0.0});
    };
    add_engine_row(serial);
    add_engine_row(parallel);
    for (const LegResult& leg : graph_legs) add_engine_row(leg);

    const double tape_allocs_per_step = allocs_per_step(serial);
    // >=10x fewer per-step heap allocations than the tape (deterministic:
    // allocation counts don't depend on timing). Phrased as a product so
    // graph_allocs_per_step == 0 passes without a division by zero.
    const bool arena_gate =
        tape_allocs_per_step >= 10.0 * graph_allocs_per_step &&
        tape_allocs_per_step > 0.0;
    engine_ok = engine_identical && arena_gate;
    bench::EmitTable(
        util::StrFormat("Graph vs tape execution engine on %s "
                        "(bitwise + arena gate)",
                        run_tag.c_str()),
        "graph_engine_" + run_tag, engine_table);
    std::printf(
        "engine phase: %s (tape %.1f heap allocs/step, graph %.1f; "
        "peak arena %.2f MB)\n",
        engine_ok ? "PASS (graph bitwise identical, >=10x fewer allocs)"
                  : (engine_identical ? "FAIL (arena gate)"
                                      : "FAIL (graph diverges from tape)"),
        tape_allocs_per_step, graph_allocs_per_step,
        static_cast<double>(graph_legs.front().graph_stats.peak_arena_bytes) /
            (1024.0 * 1024.0));
  }

  // Chaos phase (optional). --kill-at-epoch= interrupts a third leg with
  // injected faults; --resume recovers from the checkpoint it left and
  // demands bitwise identity with the uninterrupted serial leg. --resume
  // alone reuses a checkpoint from a previous invocation — a true
  // cross-process crash recovery; with both flags one process exercises
  // the whole cycle. Runs at the parallel thread count on purpose: the
  // reference leg ran single-threaded, so a bitwise match also re-proves
  // thread-count invariance across the crash boundary.
  bool chaos_ok = true;
  const bool chaos_phase = kill_epoch > 0 || resume;
  if (kill_epoch > 0) {
    const int epochs = bench_config.train.epochs;
    const int clamped = std::max(2, std::min(kill_epoch, epochs));
    if (clamped != kill_epoch) {
      std::printf(
          "chaos: clamping --kill-at-epoch=%d to %d (the kill must land "
          "after the first epoch-boundary checkpoint)\n",
          kill_epoch, clamped);
      kill_epoch = clamped;
    }
    chaos_ok = RunKillLeg(kill_epoch, context, bench_config, &telemetry);
  }
  if (chaos_ok && resume) {
    chaos_ok = RunResumeLeg(context, serial, &telemetry);
  }
  if (chaos_ok && chaos_phase) {
    chaos_ok = RunServeChaos(context, &telemetry);
  }
  util::ThreadPool::SetGlobalNumThreads(0);  // restore hardware default

  // Distributed phase: every power-of-two worker count up to --workers,
  // all on one fixed shard grid (invariance only holds for a fixed grid).
  bool dist_ok = true;
  std::vector<DistLegResult> dist_legs;
  int num_shards = 4;
  while (num_shards < dist_workers) num_shards *= 2;
  if (dist_workers > 0) {
    for (int w = 1; w <= dist_workers; w *= 2) {
      dist_legs.push_back(
          RunDistLeg(w, num_shards, context, bench_config, &telemetry));
      dist_ok = dist_ok && dist_legs.back().ok;
    }
    util::TableWriter dist_table(
        {"Workers", "train (s)", "speedup", "beta_mismatches",
         "theta_mismatches", "loss_equal"});
    const DistLegResult& base = dist_legs.front();
    for (const DistLegResult& leg : dist_legs) {
      const int64_t beta_diff =
          leg.ok && base.ok ? CountMismatches(base.beta, leg.beta) : -1;
      const int64_t theta_diff =
          leg.ok && base.ok ? CountMismatches(base.theta, leg.theta) : -1;
      const bool loss_equal = leg.final_loss == base.final_loss;
      const bool leg_identical =
          beta_diff == 0 && theta_diff == 0 && loss_equal &&
          leg.mean_coherence == base.mean_coherence;
      dist_ok = dist_ok && leg_identical;
      dist_table.AddRow(util::StrFormat("%d", leg.workers),
                        {leg.train_seconds,
                         leg.train_seconds > 0
                             ? base.train_seconds / leg.train_seconds
                             : 0.0,
                         static_cast<double>(beta_diff),
                         static_cast<double>(theta_diff),
                         loss_equal ? 1.0 : 0.0});
    }
    bench::EmitTable(
        util::StrFormat("Distributed data-parallel training, %d shard grid "
                        "on %s (process-count invariance gate)",
                        num_shards, run_tag.c_str()),
        "dist_scaling_" + run_tag, dist_table);
    if (dist_chaos && dist_ok) {
      dist_ok = RunDistChaosLeg(num_shards, context, bench_config,
                                dist_legs.front(), &telemetry);
    }
    std::printf("dist phase: %s\n",
                dist_ok ? "PASS (worker counts bitwise identical)"
                        : "FAIL (process-count invariance violated)");
  }

  // Determinism contract: both legs must agree bitwise.
  const int64_t beta_diff = CountMismatches(serial.beta, parallel.beta);
  const int64_t theta_diff = CountMismatches(serial.theta, parallel.theta);
  const bool loss_equal = serial.final_loss == parallel.final_loss;
  const bool coherence_equal =
      serial.mean_coherence == parallel.mean_coherence;
  const bool identical =
      beta_diff == 0 && theta_diff == 0 && loss_equal && coherence_equal;
  const bool finite = AllFinite(serial) && AllFinite(parallel);

  util::TableWriter table({"Stage", "1 thread (s)",
                           util::StrFormat("%d threads (s)", parallel.threads),
                           "speedup"});
  const auto add_stage = [&](const char* name, double s1, double sn) {
    table.AddRow(name, {s1, sn, sn > 0 ? s1 / sn : 0.0});
  };
  add_stage("npmi_precompute", serial.npmi_seconds, parallel.npmi_seconds);
  add_stage("train", serial.train_seconds, parallel.train_seconds);
  add_stage("infer_theta", serial.infer_seconds, parallel.infer_seconds);
  add_stage("eval_coherence", serial.eval_seconds, parallel.eval_seconds);
  add_stage("total", serial.npmi_seconds + serial.train_seconds +
                         serial.infer_seconds + serial.eval_seconds,
            parallel.npmi_seconds + parallel.train_seconds +
                parallel.infer_seconds + parallel.eval_seconds);
  table.AddRow("bitwise_identical",
               {identical ? 1.0 : 0.0, identical ? 1.0 : 0.0, 1.0});
  bench::EmitTable(
      util::StrFormat("Parallel training engine, 1 vs %d threads on %s",
                      parallel.threads, run_tag.c_str()),
      "parallel_training_" + run_tag, table);

  std::vector<std::pair<std::string, double>> summary = {
      {"threads_serial", static_cast<double>(serial.threads)},
      {"threads_parallel", static_cast<double>(parallel.threads)},
      {"final_loss", serial.final_loss},
      {"npmi", serial.mean_coherence},
      {"diversity", serial.diversity},
      {"beta_mismatches", static_cast<double>(beta_diff)},
      {"theta_mismatches", static_cast<double>(theta_diff)},
      {"bitwise_identical", identical ? 1.0 : 0.0},
      {"metrics_finite", finite ? 1.0 : 0.0}};
  if (engine_phase) {
    summary.emplace_back("engine_graph_ok", engine_ok ? 1.0 : 0.0);
    summary.emplace_back(
        "engine_graph_heap_allocs_per_step",
        static_cast<double>(graph_legs.front().train_heap_allocs) /
            std::max(1, graph_legs.front().train_steps));
    summary.emplace_back(
        "engine_graph_peak_arena_bytes",
        static_cast<double>(graph_legs.front().graph_stats.peak_arena_bytes));
  }
  if (chaos_phase) {
    summary.emplace_back("chaos_ok", chaos_ok ? 1.0 : 0.0);
    if (resume) {
      summary.emplace_back("resume_bitwise_identical", chaos_ok ? 1.0 : 0.0);
    }
  }
  if (dist_workers > 0) {
    summary.emplace_back("dist_workers_max",
                         static_cast<double>(dist_legs.back().workers));
    summary.emplace_back("dist_bitwise_identical", dist_ok ? 1.0 : 0.0);
  }
  telemetry.RecordManifest(summary);
  const util::Status telemetry_status = telemetry.Flush();
  const bool telemetry_ok =
      telemetry_status.ok() && telemetry.manifest_written();
  std::printf("[telemetry: %s%s]\n", telemetry_options.path.c_str(),
              telemetry_ok ? "" : " WRITE FAILED");

  std::printf(
      "\ndeterminism: beta mismatches=%lld theta mismatches=%lld "
      "loss %s coherence %s -> %s\n",
      static_cast<long long>(beta_diff), static_cast<long long>(theta_diff),
      loss_equal ? "equal" : "DIFFERS",
      coherence_equal ? "equal" : "DIFFERS",
      identical ? "BITWISE IDENTICAL" : "MISMATCH");
  if (!finite) std::printf("metric gate: NON-FINITE tier-1 metric\n");
  if (chaos_phase) {
    std::printf("chaos phase: %s\n",
                chaos_ok ? "PASS (recovery bitwise identical, serving "
                           "recovered)"
                         : "FAIL");
  }
  std::printf(
      "note: speedup is bounded by the host's %u hardware thread(s); on a "
      "single-core host both thread legs — and all --workers processes — "
      "time-slice one core and speedup ~1.\n",
      hw);
  return identical && finite && telemetry_ok && chaos_ok && dist_ok &&
                 engine_ok
             ? 0
             : 1;
}
