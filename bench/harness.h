#ifndef CONTRATOPIC_BENCH_HARNESS_H_
#define CONTRATOPIC_BENCH_HARNESS_H_

// Shared machinery for the table/figure reproduction benches. Each bench
// binary regenerates one table or figure of the paper (see DESIGN.md §4):
// it loads a dataset preset, trains the relevant models, prints a
// paper-style table, and mirrors it as TSV under bench_results/.
//
// Trained models are cached on disk keyed by (dataset, model, config), so
// the binaries can share training work: running bench_fig2 first makes
// bench_fig3 / bench_table3 nearly free.

#include <memory>
#include <string>
#include <vector>

#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "eval/npmi.h"
#include "text/synthetic.h"
#include "topicmodel/neural_base.h"
#include "topicmodel/topic_model.h"
#include "util/flags.h"
#include "util/table_writer.h"
#include "util/telemetry.h"

namespace contratopic {
namespace bench {

inline constexpr char kResultsDir[] = "bench_results";

// Everything needed to run one dataset's experiments.
struct ExperimentContext {
  text::SyntheticConfig config;
  text::SyntheticDataset dataset;
  embed::WordEmbeddings embeddings;  // reference-corpus PPMI-SVD (frozen)
  std::unique_ptr<eval::NpmiMatrix> train_npmi;
  std::unique_ptr<eval::NpmiMatrix> test_npmi;
};

// Generates the preset dataset, the reference-corpus embeddings, and both
// NPMI matrices. `scale` multiplies document counts.
ExperimentContext LoadExperiment(const std::string& preset_name,
                                 double scale);

// Benchmark-wide knobs derived from the command line:
//   --scale=small|paper   (paper restores K=100/100-epoch magnitudes)
//   --docs=<f>            dataset document-count multiplier
//   --threads=<n>         global thread-pool size (0 = hardware default);
//                         results are bitwise-identical for any value
//   --telemetry=<path>    JSONL run-telemetry output (see util/telemetry.h);
//                         empty disables the sink
//   --checkpoint=<path>   frozen-model checkpoint path (serve/checkpoint.h);
//                         bench_serve trains into / serves from it
//   --model=<zoo name>    model under bench for the single-model benches
//                         (bench_parallel_training); default contratopic
//   --loss-weighting=fixed|moo
//                         fixed lambda vs. multi-objective gradient-norm
//                         weights (topicmodel::LossWeighting)
//   --epochs, --topics, --seed overrides
struct BenchConfig {
  double doc_scale = 0.5;
  int num_threads = 0;  // 0 = hardware concurrency
  topicmodel::TrainConfig train;
  bool use_cache = true;
  std::string telemetry_path;
  std::string checkpoint_path;
  std::string model = "contratopic";
  topicmodel::LossWeighting loss_weighting = topicmodel::LossWeighting::kFixed;
};
BenchConfig ParseBenchConfig(const util::Flags& flags);

// Per-epoch interpretability evaluator for NeuralTopicModel telemetry:
// mean NPMI coherence (top-10 words, test-corpus NPMI) and diversity
// (unique fraction of top-25 words over all topics). `context` must
// outlive the returned callable.
topicmodel::NeuralTopicModel::EpochEvaluator MakeEpochEvaluator(
    const ExperimentContext& context);

// Attaches `telemetry` plus the standard epoch evaluator to `model` when
// it is a NeuralTopicModel (no-op for Gibbs LDA, which has no epoch
// loop). Pass telemetry = nullptr to detach.
void AttachTelemetry(topicmodel::TopicModel* model,
                     util::RunTelemetry* telemetry,
                     const ExperimentContext& context);

// The paper's per-dataset lambda (40 / 40 / 300, scaled for the harness).
float LambdaForDataset(const std::string& preset_name);

// Trained-model artifacts the benches consume.
struct TrainedModel {
  std::string zoo_name;
  std::string display_name;
  tensor::Tensor beta;        // K x V
  tensor::Tensor test_theta;  // num_test_docs x K
  topicmodel::TrainStats stats;
};

// Trains (or loads from bench_results/cache) one model on the context's
// training split. `contra_options` applies to contratopic* models. When
// `telemetry` is non-null, the run streams per-epoch records into it
// (cache hits stream nothing: the cache stores results, not
// trajectories).
TrainedModel TrainModel(const std::string& zoo_name,
                        const ExperimentContext& context,
                        const BenchConfig& bench,
                        core::ContraTopicOptions contra_options,
                        util::RunTelemetry* telemetry = nullptr);

// Same, with the dataset-appropriate default ContraTopic options.
TrainedModel TrainModel(const std::string& zoo_name,
                        const ExperimentContext& context,
                        const BenchConfig& bench);

// Prints `table` and writes it to bench_results/<stem>.tsv.
void EmitTable(const std::string& title, const std::string& stem,
               const util::TableWriter& table);

}  // namespace bench
}  // namespace contratopic

#endif  // CONTRATOPIC_BENCH_HARNESS_H_
