// Differential tolerance harness for the mixed-precision serving tier
// (tensor/quant.h, DESIGN.md §15). The contract has two halves, and this
// file pins both:
//
//   * WITHIN a precision, results are bitwise identical across kernel
//     backends, thread counts, and execution engines -- the quantized
//     GEMMs follow the same canonical-order rules as the fp32 kernels.
//     Randomized shapes x {bf16, int8} x {scalar, best-supported} x
//     {1, 4} threads gives a few hundred configurations per full run.
//
//   * ACROSS precisions, fp32 stays bitwise-unchanged (the quantized
//     paths must not perturb it), theta stays inside the documented
//     tolerance (bf16 L-inf <= kBf16ThetaTol, int8 <= kInt8ThetaTol),
//     and ranked top-words from a serving engine are invariant: they are
//     answered from the checkpoint's exact fp32-derived id lists.
//
// The GEMM-level tolerance checks use analytic error bounds derived from
// the quantization step sizes, not hand-tuned constants: bf16 rounds each
// weight to 8 mantissa bits (relative error <= 2^-8 per product), and
// int8's per-row symmetric scheme loses at most half a step per operand.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"
#include "tensor/backend.h"
#include "tensor/engine.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "text/corpus.h"
#include "text/synthetic.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace tensor {
namespace {

// Documented model-level theta tolerances (L-inf against fp32 theta on
// the same documents). DESIGN.md §15 quotes these numbers; tightening
// them requires re-measuring, loosening them requires a design review.
constexpr float kBf16ThetaTol = 0.05f;
constexpr float kInt8ThetaTol = 0.15f;

uint32_t BitsOf(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void ExpectBitwise(const Tensor& want, const Tensor& got,
                   const std::string& what) {
  ASSERT_TRUE(want.same_shape(got))
      << what << ": " << want.ShapeString() << " vs " << got.ShapeString();
  for (int64_t i = 0; i < want.numel(); ++i) {
    if (std::isnan(want.data()[i]) && std::isnan(got.data()[i])) continue;
    ASSERT_EQ(BitsOf(want.data()[i]), BitsOf(got.data()[i]))
        << what << " differs at flat index " << i << ": "
        << want.data()[i] << " vs " << got.data()[i];
  }
}

// Scalar backend at 1 thread produces the canonical bits; every supported
// backend at 1 and 4 threads must reproduce them exactly.
void ExpectBackendInvariant(const std::function<Tensor()>& fn,
                            const std::string& what) {
  util::ThreadPool::SetGlobalNumThreads(1);
  Tensor want;
  {
    ScopedKernelBackend scalar(KernelBackendKind::kScalar);
    want = fn();
  }
  for (KernelBackendKind kind : SupportedBackends()) {
    ScopedKernelBackend scoped(kind);
    for (int threads : {1, 4}) {
      util::ThreadPool::SetGlobalNumThreads(threads);
      const Tensor got = fn();
      ExpectBitwise(want, got,
                    what + " [" + KernelBackendName(kind) + ", " +
                        std::to_string(threads) + " threads]");
      if (::testing::Test::HasFatalFailure()) {
        util::ThreadPool::SetGlobalNumThreads(0);
        return;
      }
    }
  }
  util::ThreadPool::SetGlobalNumThreads(0);
}

Tensor RandomTensor(util::Rng& rng, int64_t rows, int64_t cols,
                    float scale = 3.0f) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Normal(0.0, scale));
  }
  return t;
}

int64_t RandDim(util::Rng& rng, int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  rng.UniformInt(static_cast<uint64_t>(hi - lo + 1)));
}

// ---------------------------------------------------------------------------
// Within-precision bitwise invariance of the quantized GEMMs: random
// (m, k, n) draws, with and without bias, one draw large enough to take
// the threaded row split. 14 draws x 2 precisions x |backends| x 2
// thread counts (+ canon runs) ~ a few hundred configurations.
// ---------------------------------------------------------------------------

TEST(PrecisionDifferentialTest, QuantizedGemmsBackendAndThreadInvariant) {
  util::Rng rng(811);
  for (int iter = 0; iter < 14; ++iter) {
    int64_t m, k, n;
    if (iter == 13) {
      // 64 * 260 * 260 > 2^22 flops: the ParallelOverRows path.
      m = 64;
      k = 260;
      n = 260;
    } else {
      m = RandDim(rng, 1, 40);
      k = RandDim(rng, 1, 200);
      n = RandDim(rng, 1, 90);
    }
    const Tensor x = RandomTensor(rng, m, k);
    const Tensor wt = RandomTensor(rng, n, k);  // packed transposed
    const Tensor bias = RandomTensor(rng, 1, n, 0.5f);
    const float* b = iter % 2 == 0 ? bias.data() : nullptr;
    // Quantize under the scalar backend once; the packed forms feed every
    // run so the GEMMs (not the codecs) are what varies.
    Bf16Matrix wb;
    Int8Matrix wq;
    {
      ScopedKernelBackend scalar(KernelBackendKind::kScalar);
      wb = Bf16FromTensor(wt);
      wq = Int8FromTensor(wt);
    }
    ExpectBackendInvariant([&] { return MatMulBf16T(x, wb, b); },
                           "MatMulBf16T iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
    ExpectBackendInvariant([&] { return MatMulInt8T(x, wq, b); },
                           "MatMulInt8T iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PrecisionDifferentialTest, QuantizersBackendInvariant) {
  // The codecs themselves (bf16 encode/decode, per-row absmax + int8
  // quantize) must produce identical packed bytes on every backend.
  util::Rng rng(812);
  for (int iter = 0; iter < 6; ++iter) {
    const Tensor w =
        RandomTensor(rng, RandDim(rng, 1, 60), RandDim(rng, 1, 120));
    Bf16Matrix want_b;
    Int8Matrix want_q;
    {
      ScopedKernelBackend scalar(KernelBackendKind::kScalar);
      want_b = Bf16FromTensor(w);
      want_q = Int8FromTensor(w);
    }
    for (KernelBackendKind kind : SupportedBackends()) {
      ScopedKernelBackend scoped(kind);
      const Bf16Matrix got_b = Bf16FromTensor(w);
      const Int8Matrix got_q = Int8FromTensor(w);
      ASSERT_EQ(want_b.data, got_b.data)
          << "bf16 codes differ on " << KernelBackendName(kind);
      ASSERT_EQ(want_q.data, got_q.data)
          << "int8 codes differ on " << KernelBackendName(kind);
      for (size_t r = 0; r < want_q.scales.size(); ++r) {
        ASSERT_EQ(BitsOf(want_q.scales[r]), BitsOf(got_q.scales[r]))
            << "int8 scale row " << r << " on " << KernelBackendName(kind);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-precision tolerance at the GEMM level, against analytic bounds.
// ---------------------------------------------------------------------------

TEST(PrecisionDifferentialTest, Bf16GemmWithinAnalyticBound) {
  util::Rng rng(821);
  for (int iter = 0; iter < 8; ++iter) {
    const int64_t m = RandDim(rng, 1, 30);
    const int64_t k = RandDim(rng, 2, 300);
    const int64_t n = RandDim(rng, 1, 60);
    const Tensor x = RandomTensor(rng, m, k);
    const Tensor wt = RandomTensor(rng, n, k);
    const Bf16Matrix wb = Bf16FromTensor(wt);
    const Tensor got = MatMulBf16T(x, wb, nullptr);
    for (int64_t r = 0; r < m; ++r) {
      for (int64_t o = 0; o < n; ++o) {
        // Reference dot in double; bound: each product's weight carries
        // <= 2^-8 relative rounding, plus slack for fp32 accumulation.
        double ref = 0.0, mag = 0.0;
        for (int64_t i = 0; i < k; ++i) {
          const double xi = x.at(r, i);
          const double wi = wt.at(o, i);
          ref += xi * wi;
          mag += std::abs(xi * wi);
        }
        const double bound = mag * (1.0 / 256.0) + mag * 1e-5 + 1e-4;
        ASSERT_NEAR(got.at(r, o), ref, bound)
            << "iter " << iter << " out[" << r << "," << o << "]";
      }
    }
  }
}

TEST(PrecisionDifferentialTest, Int8GemmWithinAnalyticBound) {
  util::Rng rng(822);
  for (int iter = 0; iter < 8; ++iter) {
    const int64_t m = RandDim(rng, 1, 30);
    const int64_t k = RandDim(rng, 2, 300);
    const int64_t n = RandDim(rng, 1, 60);
    const Tensor x = RandomTensor(rng, m, k);
    const Tensor wt = RandomTensor(rng, n, k);
    const Int8Matrix wq = Int8FromTensor(wt);
    const Tensor got = MatMulInt8T(x, wq, nullptr);
    for (int64_t r = 0; r < m; ++r) {
      // The activation row is quantized with its own symmetric scale.
      double x_absmax = 0.0, x_abssum = 0.0;
      for (int64_t i = 0; i < k; ++i) {
        x_absmax = std::max(x_absmax, std::abs(double{x.at(r, i)}));
        x_abssum += std::abs(double{x.at(r, i)});
      }
      const double sx = x_absmax / 127.0;
      for (int64_t o = 0; o < n; ++o) {
        const double sw = wq.scales[static_cast<size_t>(o)];
        double ref = 0.0, w_abssum = 0.0;
        for (int64_t i = 0; i < k; ++i) {
          ref += double{x.at(r, i)} * double{wt.at(o, i)};
          w_abssum += std::abs(double{wt.at(o, i)});
        }
        // |x~w~ - xw| <= (sw/2) sum|x| + (sx/2) sum|w| + k sx sw / 4,
        // plus slack for the fp32 cast of the dequantized result.
        const double bound = 0.5 * sw * x_abssum + 0.5 * sx * w_abssum +
                             static_cast<double>(k) * sx * sw * 0.25 +
                             std::abs(ref) * 1e-5 + 1e-4;
        ASSERT_NEAR(got.at(r, o), ref, bound)
            << "iter " << iter << " out[" << r << "," << o << "]";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Model-level: a trained tiny model served at each precision.
// ---------------------------------------------------------------------------

struct PrecisionFixture {
  text::SyntheticDataset dataset;
  embed::WordEmbeddings embeddings;
  std::unique_ptr<topicmodel::TopicModel> etm;
  // The ambient precision before any scopes (fp32 unless the suite runs
  // under a CT_SERVE_PRECISION override, which CI's env matrix does).
  ServePrecision startup_precision;
  Tensor fp32_theta;  // InferTheta over the test split, explicit fp32

  PrecisionFixture()
      : dataset(text::GenerateSynthetic(text::Preset20NG(0.15))),
        embeddings(embed::WordEmbeddings::Train(dataset.train, [] {
          embed::EmbeddingConfig c;
          c.dimension = 24;
          return c;
        }())) {
    startup_precision = ActiveServePrecision();
    topicmodel::TrainConfig config;
    config.num_topics = 8;
    config.epochs = 3;
    config.batch_size = 128;
    config.encoder_hidden = 32;
    config.encoder_layers = 1;
    etm = core::CreateModel("etm", config, embeddings);
    etm->Train(dataset.train);
    ScopedServePrecision fp32_scope(ServePrecision::kFp32);
    fp32_theta = etm->InferTheta(dataset.test);
  }
};

PrecisionFixture& Shared() {
  static PrecisionFixture* fixture = new PrecisionFixture();
  return *fixture;
}

float MaxAbsDelta(const Tensor& a, const Tensor& b) {
  CHECK(a.same_shape(b));
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

TEST(PrecisionDifferentialTest, Fp32PathIsBitwiseUnchangedByTheTier) {
  // The default (unscoped) path must match an explicit fp32 scope bit for
  // bit: the quantized tier may not perturb fp32 serving. (The golden
  // checkpoint suite pins the same bits against a committed fixture, so
  // this also holds against history, not just within the process.) Only
  // meaningful when the ambient default *is* fp32 -- under the env
  // matrix's CT_SERVE_PRECISION overrides the default path is the
  // overridden precision by design.
  PrecisionFixture& shared = Shared();
  if (shared.startup_precision != ServePrecision::kFp32) {
    GTEST_SKIP() << "CT_SERVE_PRECISION overrides the default path";
  }
  const Tensor theta = shared.etm->InferTheta(shared.dataset.test);
  ExpectBitwise(shared.fp32_theta, theta, "fp32 theta via default path");
}

TEST(PrecisionDifferentialTest, ThetaWithinDocumentedTolerance) {
  PrecisionFixture& shared = Shared();
  Tensor bf16_theta, int8_theta;
  {
    ScopedServePrecision scoped(ServePrecision::kBf16);
    bf16_theta = shared.etm->InferTheta(shared.dataset.test);
  }
  {
    ScopedServePrecision scoped(ServePrecision::kInt8);
    int8_theta = shared.etm->InferTheta(shared.dataset.test);
  }
  const float bf16_delta = MaxAbsDelta(shared.fp32_theta, bf16_theta);
  const float int8_delta = MaxAbsDelta(shared.fp32_theta, int8_theta);
  RecordProperty("bf16_theta_max_abs_delta", std::to_string(bf16_delta));
  RecordProperty("int8_theta_max_abs_delta", std::to_string(int8_delta));
  EXPECT_LE(bf16_delta, kBf16ThetaTol);
  EXPECT_LE(int8_delta, kInt8ThetaTol);
  // Reduced-precision theta rows are still distributions: the trailing
  // softmax runs in fp32 on whatever the quantized encoder produced.
  for (const Tensor* theta : {&bf16_theta, &int8_theta}) {
    for (int64_t r = 0; r < theta->rows(); ++r) {
      double sum = 0.0;
      for (int64_t c = 0; c < theta->cols(); ++c) {
        ASSERT_GE(theta->at(r, c), 0.0f);
        sum += theta->at(r, c);
      }
      ASSERT_NEAR(sum, 1.0, 1e-4) << "row " << r;
    }
  }
}

TEST(PrecisionDifferentialTest, ModelThetaBackendAndThreadInvariant) {
  // The full encoder path (quantized GEMMs + fp32 activations/softmax)
  // must produce identical bits on every backend and thread count,
  // per precision.
  PrecisionFixture& shared = Shared();
  for (ServePrecision p :
       {ServePrecision::kBf16, ServePrecision::kInt8}) {
    ScopedServePrecision scoped(p);
    ExpectBackendInvariant(
        [&] { return shared.etm->InferTheta(shared.dataset.test); },
        std::string("InferTheta at ") + ServePrecisionName(p));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PrecisionDifferentialTest, TapeAndGraphEnginesAgreePerPrecision) {
  PrecisionFixture& shared = Shared();
  for (ServePrecision p : {ServePrecision::kFp32, ServePrecision::kBf16,
                           ServePrecision::kInt8}) {
    ScopedServePrecision scoped(p);
    Tensor tape_theta, graph_theta;
    {
      ScopedExecEngine tape(ExecEngine::kTape);
      tape_theta = shared.etm->InferTheta(shared.dataset.test);
    }
    {
      ScopedExecEngine graph(ExecEngine::kGraph);
      graph_theta = shared.etm->InferTheta(shared.dataset.test);
    }
    ExpectBitwise(tape_theta, graph_theta,
                  std::string("tape vs graph at ") + ServePrecisionName(p));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PrecisionDifferentialTest, EngineTopWordsInvariantAcrossPrecisions) {
  // Serving answers TopicTopWords from the checkpoint's exact id lists,
  // so the ranked words are invariant by construction -- across the
  // engine's precision option AND across checkpoint storage formats.
  PrecisionFixture& shared = Shared();
  const std::string fp32_path =
      ::testing::TempDir() + "/precision_fp32.ckpt";
  ASSERT_TRUE(serve::SaveCheckpoint(*shared.etm, shared.dataset.train.vocab(),
                                    fp32_path)
                  .ok());

  std::vector<std::vector<std::string>> want;  // from the fp32 engine
  {
    auto engine = serve::InferenceEngine::Load(fp32_path);
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (int t = 0; t < (*engine)->num_topics(); ++t) {
      auto words = (*engine)->TopicTopWords(t, 10);
      ASSERT_TRUE(words.ok()) << words.status();
      want.push_back(std::move(words).value());
    }
  }

  struct Leg {
    std::string path;
    ServePrecision precision;
  };
  std::vector<Leg> legs = {{fp32_path, ServePrecision::kBf16},
                           {fp32_path, ServePrecision::kInt8}};
  for (ServePrecision storage :
       {ServePrecision::kBf16, ServePrecision::kInt8}) {
    const std::string path = ::testing::TempDir() + "/precision_" +
                             ServePrecisionName(storage) + ".ckpt";
    ASSERT_TRUE(serve::SaveQuantizedCheckpoint(
                    *shared.etm, shared.dataset.train.vocab(), path, storage)
                    .ok());
    legs.push_back({path, storage});
  }
  for (const Leg& leg : legs) {
    serve::InferenceEngine::Options options;
    options.precision = leg.precision;
    auto engine = serve::InferenceEngine::Load(leg.path, options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (int t = 0; t < (*engine)->num_topics(); ++t) {
      auto words = (*engine)->TopicTopWords(t, 10);
      ASSERT_TRUE(words.ok()) << words.status();
      EXPECT_EQ(want[static_cast<size_t>(t)], *words)
          << "topic " << t << " from " << leg.path << " at "
          << ServePrecisionName(leg.precision);
    }
  }
}

TEST(PrecisionDifferentialTest, EnginePrecisionOptionBoundsTheta) {
  // An engine pinned to a reduced precision serves theta within the same
  // documented tolerance of the fp32 engine's answers.
  PrecisionFixture& shared = Shared();
  const std::string path =
      ::testing::TempDir() + "/precision_option.ckpt";
  ASSERT_TRUE(serve::SaveCheckpoint(*shared.etm, shared.dataset.train.vocab(),
                                    path)
                  .ok());
  auto fp32_engine = serve::InferenceEngine::Load(path);
  ASSERT_TRUE(fp32_engine.ok()) << fp32_engine.status();

  struct Leg {
    ServePrecision precision;
    float tol;
  };
  for (const Leg& leg : {Leg{ServePrecision::kBf16, kBf16ThetaTol},
                         Leg{ServePrecision::kInt8, kInt8ThetaTol}}) {
    serve::InferenceEngine::Options options;
    options.precision = leg.precision;
    auto engine = serve::InferenceEngine::Load(path, options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    const int n = std::min(16, shared.dataset.test.num_docs());
    for (int i = 0; i < n; ++i) {
      const text::Document& doc = shared.dataset.test.doc(i);
      if (doc.entries.empty()) continue;
      serve::InferenceEngine::BowDoc bow;
      for (const auto& e : doc.entries) bow.emplace_back(e.word_id, e.count);
      auto want = (*fp32_engine)->InferTheta(bow);
      auto got = (*engine)->InferTheta(bow);
      ASSERT_TRUE(want.ok()) << want.status();
      ASSERT_TRUE(got.ok()) << got.status();
      ASSERT_EQ(want->size(), got->size());
      for (size_t k = 0; k < want->size(); ++k) {
        ASSERT_NEAR((*want)[k], (*got)[k], leg.tol)
            << "doc " << i << " topic " << k << " at "
            << ServePrecisionName(leg.precision);
      }
    }
  }
}

TEST(PrecisionDifferentialTest, QuantizedCheckpointsAreSmaller) {
  PrecisionFixture& shared = Shared();
  const text::Vocabulary& vocab = shared.dataset.train.vocab();
  auto file_size = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    CHECK(static_cast<bool>(in)) << path;
    return static_cast<int64_t>(in.tellg());
  };
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(
      serve::SaveCheckpoint(*shared.etm, vocab, dir + "/size_fp32.ckpt")
          .ok());
  ASSERT_TRUE(serve::SaveQuantizedCheckpoint(*shared.etm, vocab,
                                             dir + "/size_bf16.ckpt",
                                             ServePrecision::kBf16)
                  .ok());
  ASSERT_TRUE(serve::SaveQuantizedCheckpoint(*shared.etm, vocab,
                                             dir + "/size_int8.ckpt",
                                             ServePrecision::kInt8)
                  .ok());
  const int64_t fp32 = file_size(dir + "/size_fp32.ckpt");
  const int64_t bf16 = file_size(dir + "/size_bf16.ckpt");
  const int64_t int8 = file_size(dir + "/size_int8.ckpt");
  RecordProperty("fp32_bytes", std::to_string(fp32));
  RecordProperty("bf16_bytes", std::to_string(bf16));
  RecordProperty("int8_bytes", std::to_string(int8));
  // The vocab strings and small fp32 tensors dilute the ratio, so the
  // gates are looser than the raw 2x / 4x of the tensor payloads.
  EXPECT_LT(bf16, fp32 * 3 / 4);
  EXPECT_LT(int8, fp32 / 2);
}

TEST(PrecisionDifferentialTest, QuantizedCheckpointRoundTripsTheta) {
  // Restoring a quantized checkpoint dequantizes to fp32; serving it at
  // fp32 must stay within the storage precision's documented tolerance
  // of the original model (storage error only, no compute error).
  PrecisionFixture& shared = Shared();
  struct Leg {
    ServePrecision storage;
    float tol;
  };
  for (const Leg& leg : {Leg{ServePrecision::kBf16, kBf16ThetaTol},
                         Leg{ServePrecision::kInt8, kInt8ThetaTol}}) {
    // "precision_" prefix keeps these paths disjoint from the model-zoo
    // round-trip tests sharing TempDir().
    const std::string path = ::testing::TempDir() + "/precision_roundtrip_" +
                             ServePrecisionName(leg.storage) + ".ckpt";
    ASSERT_TRUE(serve::SaveQuantizedCheckpoint(
                    *shared.etm, shared.dataset.train.vocab(), path,
                    leg.storage)
                    .ok());
    auto ckpt = serve::ReadCheckpoint(path);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status();
    EXPECT_EQ(ckpt->storage_precision, leg.storage);
    auto model = serve::RestoreModel(*ckpt);
    ASSERT_TRUE(model.ok()) << model.status();
    const Tensor theta = (*model)->InferTheta(shared.dataset.test);
    const float delta = MaxAbsDelta(shared.fp32_theta, theta);
    RecordProperty(std::string(ServePrecisionName(leg.storage)) +
                       "_restore_theta_max_abs_delta",
                   std::to_string(delta));
    EXPECT_LE(delta, leg.tol) << ServePrecisionName(leg.storage);
  }
}

TEST(PrecisionDifferentialTest, QuantizedCheckpointRefusesTrainingState) {
  // Serving-only by contract: quantized storage + training state must be
  // refused at write time (resumed training stays fp32-bitwise).
  PrecisionFixture& shared = Shared();
  auto ckpt = serve::BuildCheckpoint(*shared.etm,
                                     shared.dataset.train.vocab());
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  ckpt->has_training_state = true;
  ckpt->storage_precision = ServePrecision::kInt8;
  const util::Status status = serve::WriteCheckpoint(
      *ckpt, ::testing::TempDir() + "/refused.ckpt");
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument)
      << status.ToString();
}

}  // namespace
}  // namespace tensor
}  // namespace contratopic
