// Cross-model invariance harness (model-zoo expansion ISSUE, satellite
// #1): every neural model in the zoo — including the new CLNTM / TSCTM
// contrastive members and the multi-objective (MOO) weighting mode — must
// honor the same determinism contracts the seed established one model at
// a time:
//
//   * thread-count invariance (DESIGN.md "Parallelism & determinism"),
//   * SIMD-backend invariance (scalar vs. the best supported backend),
//   * execution-engine invariance (tape vs. the graph-compiled engine),
//   * process-count invariance under dist::DataParallelTrainer (§13).
//
// Each model trains 2 epochs on the 20NG-sim preset under a grid of
// {threads} x {backend} x {engine} variants; loss, beta, and test theta
// must be bitwise identical to the (1 thread, scalar, tape) reference.
// Gibbs LDA is excluded: it is not a NeuralTopicModel, so the engine /
// backend axes do not apply.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "dist/trainer.h"
#include "embed/word_embeddings.h"
#include "tensor/backend.h"
#include "tensor/engine.h"
#include "text/synthetic.h"
#include "topicmodel/neural_base.h"
#include "util/logging.h"
#include "util/thread_pool.h"

// fork() under ThreadSanitizer trips on the sanitizer's own background
// threads; the multiprocess legs are skipped there (same guard as
// dist_determinism_test.cc).
#if defined(__SANITIZE_THREAD__)
#define CT_SKIP_FORK_TESTS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CT_SKIP_FORK_TESTS 1
#endif
#endif

namespace contratopic {
namespace {

using tensor::Tensor;

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.same_shape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

struct ZooRun {
  float final_loss = 0.0f;
  Tensor beta;
  Tensor theta;
};

struct Variant {
  int threads = 1;
  tensor::KernelBackendKind backend = tensor::KernelBackendKind::kScalar;
  tensor::ExecEngine engine = tensor::ExecEngine::kTape;
};

std::string VariantName(const Variant& v) {
  return "threads=" + std::to_string(v.threads) +
         " backend=" + std::string(tensor::KernelBackendName(v.backend)) +
         " engine=" + std::string(tensor::ExecEngineName(v.engine));
}

// One from-scratch training run: corpus, embeddings, training, and
// inference all execute under the requested variant, so the invariance
// claim covers the whole pipeline, not just the step loop.
ZooRun TrainZoo(const std::string& model_name, const Variant& variant,
                topicmodel::LossWeighting weighting) {
  tensor::ScopedExecEngine scoped_engine(variant.engine);
  tensor::ScopedKernelBackend scoped_backend(variant.backend);
  util::ThreadPool::SetGlobalNumThreads(variant.threads);

  const text::SyntheticConfig config = text::Preset20NG(0.1);
  text::SyntheticDataset dataset = text::GenerateSynthetic(config);
  const text::BowCorpus reference =
      text::GenerateReferenceCorpus(config, dataset.train.vocab());
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(reference, [] {
        embed::EmbeddingConfig c;
        c.dimension = 16;
        return c;
      }());

  topicmodel::TrainConfig tc;
  tc.num_topics = 8;
  tc.epochs = 2;
  tc.batch_size = 128;
  tc.encoder_hidden = 32;
  tc.encoder_layers = 1;
  auto model = core::CreateModel(model_name, tc, embeddings);
  auto* neural = dynamic_cast<topicmodel::NeuralTopicModel*>(model.get());
  CHECK(neural != nullptr) << model_name;
  neural->SetLossWeighting(weighting);

  const topicmodel::TrainStats stats = model->Train(dataset.train);
  CHECK(stats.status.ok()) << stats.status.ToString();

  ZooRun run;
  run.final_loss = static_cast<float>(stats.final_loss);
  run.beta = model->Beta();
  run.theta = model->InferTheta(dataset.test);
  util::ThreadPool::SetGlobalNumThreads(0);
  return run;
}

void ExpectVariantGridInvariant(const std::string& model_name,
                                topicmodel::LossWeighting weighting) {
  const Variant reference_variant;  // 1 thread, scalar, tape
  const ZooRun reference = TrainZoo(model_name, reference_variant, weighting);
  ASSERT_GT(reference.beta.numel(), 0);

  const tensor::KernelBackendKind best = tensor::BestSupportedBackend();
  const std::vector<Variant> variants = {
      {4, tensor::KernelBackendKind::kScalar, tensor::ExecEngine::kTape},
      {1, best, tensor::ExecEngine::kTape},
      {1, tensor::KernelBackendKind::kScalar, tensor::ExecEngine::kGraph},
      {4, best, tensor::ExecEngine::kGraph},
  };
  for (const Variant& variant : variants) {
    SCOPED_TRACE(VariantName(variant));
    const ZooRun run = TrainZoo(model_name, variant, weighting);
    EXPECT_EQ(reference.final_loss, run.final_loss);
    ExpectBitwiseEqual(reference.beta, run.beta);
    ExpectBitwiseEqual(reference.theta, run.theta);
  }
}

// ---------------------------------------------------------------------------
// Thread x backend x engine grid, fixed weighting: the full neural zoo.
// ---------------------------------------------------------------------------

class ModelZooInvarianceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZooInvarianceTest, ThreadBackendEngineGridIsBitwiseInvariant) {
  ExpectVariantGridInvariant(GetParam(), topicmodel::LossWeighting::kFixed);
}

INSTANTIATE_TEST_SUITE_P(
    NeuralZoo, ModelZooInvarianceTest,
    ::testing::Values("prodlda", "wlda", "etm", "nstm", "wete", "ntmr",
                      "vtmrl", "clntm", "tsctm", "contratopic"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// The same grid under --loss-weighting=moo for the models that populate
// per-objective terms: the MOO weights are derived from canonical-order
// gradient norms, so they must not perturb any invariance axis.
// ---------------------------------------------------------------------------

class MooInvarianceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MooInvarianceTest, MooWeightingKeepsTheGridBitwiseInvariant) {
  ExpectVariantGridInvariant(GetParam(), topicmodel::LossWeighting::kMoo);
}

INSTANTIATE_TEST_SUITE_P(
    ContrastiveZoo, MooInvarianceTest,
    ::testing::Values("etm", "clntm", "tsctm", "contratopic"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// Process-count invariance: the contrastive trio through the distributed
// trainer at 1 and 2 workers on one fixed shard grid. (The full zoo rides
// the thread/backend/engine grid above; the fork-based legs are kept to
// the new models plus the reference model to bound suite wall-clock.)
// ---------------------------------------------------------------------------

struct DistCase {
  std::string model;
  topicmodel::LossWeighting weighting = topicmodel::LossWeighting::kFixed;
};

ZooRun TrainZooDistributed(const DistCase& c, int workers) {
  const text::SyntheticConfig config = text::Preset20NG(0.1);
  text::SyntheticDataset dataset = text::GenerateSynthetic(config);
  const text::BowCorpus reference =
      text::GenerateReferenceCorpus(config, dataset.train.vocab());
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(reference, [] {
        embed::EmbeddingConfig c;
        c.dimension = 16;
        return c;
      }());

  topicmodel::TrainConfig tc;
  tc.num_topics = 8;
  tc.epochs = 2;
  tc.batch_size = 128;
  tc.encoder_hidden = 32;
  tc.encoder_layers = 1;
  auto model = core::CreateModel(c.model, tc, embeddings);
  auto* neural = dynamic_cast<topicmodel::NeuralTopicModel*>(model.get());
  CHECK(neural != nullptr) << c.model;
  neural->SetLossWeighting(c.weighting);

  dist::Options options;
  options.workers = workers;
  options.num_shards = 4;
  dist::DataParallelTrainer trainer(neural, options);
  util::StatusOr<topicmodel::TrainStats> stats = trainer.Train(dataset.train);
  CHECK(stats.ok()) << stats.status().ToString();
  CHECK(stats->status.ok()) << stats->status.ToString();

  ZooRun run;
  run.final_loss = static_cast<float>(stats->final_loss);
  run.beta = model->Beta();
  run.theta = model->InferTheta(dataset.test);
  return run;
}

class DistZooInvarianceTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistZooInvarianceTest, WorkerCountIsBitwiseInvariant) {
#ifdef CT_SKIP_FORK_TESTS
  GTEST_SKIP() << "fork-based legs are disabled under ThreadSanitizer";
#else
  const DistCase c = GetParam();
  const ZooRun one = TrainZooDistributed(c, 1);
  ASSERT_GT(one.beta.numel(), 0);
  const ZooRun two = TrainZooDistributed(c, 2);
  EXPECT_EQ(one.final_loss, two.final_loss);
  ExpectBitwiseEqual(one.beta, two.beta);
  ExpectBitwiseEqual(one.theta, two.theta);
#endif
}

INSTANTIATE_TEST_SUITE_P(
    ContrastiveZoo, DistZooInvarianceTest,
    ::testing::Values(DistCase{"clntm", topicmodel::LossWeighting::kFixed},
                      DistCase{"tsctm", topicmodel::LossWeighting::kFixed},
                      DistCase{"contratopic",
                               topicmodel::LossWeighting::kFixed},
                      DistCase{"clntm", topicmodel::LossWeighting::kMoo},
                      DistCase{"contratopic",
                               topicmodel::LossWeighting::kMoo}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.model +
             (info.param.weighting == topicmodel::LossWeighting::kMoo
                  ? "_moo"
                  : "_fixed");
    });

}  // namespace
}  // namespace contratopic
