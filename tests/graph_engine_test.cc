// Tests for the graph-compiled execution engine (tensor/engine.h,
// tensor/graph.h, tensor/arena.h; DESIGN.md §14), in three layers:
//
//   GraphEngineTest        -- engine selection, the pooled arena (alignment,
//                             no-aliasing of live buffers), plan determinism,
//                             fusion and hoist bookkeeping.
//   GraphDifferentialTest  -- the bitwise tape-vs-graph contract: every
//                             autodiff op, fused chains (with numeric
//                             grad_check), and a full ContraTopic training
//                             run across kernel backends, thread counts, and
//                             dist worker counts.
//
// The suite names are load-bearing: the sanitizer CI leg selects them via
// `ctest -R ... GraphDifferential|GraphEngine`.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/contratopic.h"
#include "dist/trainer.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "tensor/arena.h"
#include "tensor/autodiff.h"
#include "tensor/backend.h"
#include "tensor/engine.h"
#include "tensor/grad_check.h"
#include "tensor/graph.h"
#include "tensor/tensor.h"
#include "text/synthetic.h"
#include "topicmodel/neural_base.h"
#include "util/rng.h"
#include "util/thread_pool.h"

#if defined(__SANITIZE_THREAD__)
#define CT_SKIP_FORK_TESTS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CT_SKIP_FORK_TESTS 1
#endif
#endif

namespace contratopic {
namespace {

using autodiff::Var;
using tensor::ExecEngine;
using tensor::Tensor;

uint32_t BitsOf(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void ExpectBitwise(const Tensor& want, const Tensor& got,
                   const std::string& what) {
  ASSERT_TRUE(want.same_shape(got))
      << what << ": " << want.ShapeString() << " vs " << got.ShapeString();
  for (int64_t i = 0; i < want.numel(); ++i) {
    if (std::isnan(want.data()[i]) && std::isnan(got.data()[i])) continue;
    ASSERT_EQ(BitsOf(want.data()[i]), BitsOf(got.data()[i]))
        << what << " differs at flat index " << i << ": " << want.data()[i]
        << " vs " << got.data()[i];
  }
}

uint64_t HashOf(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

Tensor RandomTensor(util::Rng& rng, int64_t rows, int64_t cols,
                    bool positive = false) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    float v = static_cast<float>(rng.Uniform() * 4.0 - 2.0);
    if (positive) v = std::abs(v) + 0.1f;
    t.data()[i] = v;
  }
  return t;
}

// ---------------------------------------------------------------------------
// GraphEngineTest: selection plumbing.
// ---------------------------------------------------------------------------

TEST(GraphEngineTest, ParsesEngineNames) {
  ExecEngine engine = ExecEngine::kTape;
  EXPECT_TRUE(tensor::ParseExecEngineName("tape", &engine));
  EXPECT_EQ(engine, ExecEngine::kTape);
  EXPECT_TRUE(tensor::ParseExecEngineName("graph", &engine));
  EXPECT_EQ(engine, ExecEngine::kGraph);
  EXPECT_FALSE(tensor::ParseExecEngineName("jit", &engine));
  EXPECT_STREQ(tensor::ExecEngineName(ExecEngine::kTape), "tape");
  EXPECT_STREQ(tensor::ExecEngineName(ExecEngine::kGraph), "graph");
}

TEST(GraphEngineTest, ScopedExecEngineRestoresThePreviousEngine) {
  const ExecEngine before = tensor::ActiveExecEngine();
  {
    tensor::ScopedExecEngine scoped(ExecEngine::kGraph);
    EXPECT_EQ(tensor::ActiveExecEngine(), ExecEngine::kGraph);
    {
      tensor::ScopedExecEngine nested(ExecEngine::kTape);
      EXPECT_EQ(tensor::ActiveExecEngine(), ExecEngine::kTape);
    }
    EXPECT_EQ(tensor::ActiveExecEngine(), ExecEngine::kGraph);
  }
  EXPECT_EQ(tensor::ActiveExecEngine(), before);
}

TEST(GraphEngineTest, DisabledSessionIsInert) {
  graph::GraphSession session(/*enabled=*/false);
  EXPECT_EQ(graph::GraphSession::Active(), nullptr);
  Var x = Var::Constant(Tensor::Full(2, 2, 3.0f));
  Var y = autodiff::MulScalar(x, 2.0f);
  // Eager: the value exists without any force.
  EXPECT_EQ(y.node()->pending, nullptr);
  EXPECT_EQ(y.value().at(0, 0), 6.0f);
}

// ---------------------------------------------------------------------------
// GraphEngineTest: the pooled arena.
// ---------------------------------------------------------------------------

TEST(GraphEngineTest, ArenaRoundsCapacitiesToTheSizeClass) {
  // Linear 16-float classes up to the limit, then power-of-two doubling
  // (so large shapes that drift step to step still share buckets).
  EXPECT_EQ(tensor::BufferSizeClass(1), 16u);
  EXPECT_EQ(tensor::BufferSizeClass(17), 32u);
  EXPECT_EQ(tensor::BufferSizeClass(tensor::kBufferClassLinearLimitFloats),
            tensor::kBufferClassLinearLimitFloats);
  EXPECT_EQ(tensor::BufferSizeClass(tensor::kBufferClassLinearLimitFloats + 1),
            2 * tensor::kBufferClassLinearLimitFloats);
  EXPECT_EQ(tensor::BufferSizeClass(250000), 262144u);
  tensor::BufferPool pool;
  for (size_t n : {1ul, 5ul, 16ul, 17ul, 100ul, 1000ul, 5000ul, 250000ul}) {
    std::vector<float> buf = pool.AcquireZero(n);
    EXPECT_EQ(buf.size(), n);
    EXPECT_GE(buf.capacity(), n);
    EXPECT_EQ(buf.capacity() % tensor::kBufferAlignFloats, 0u)
        << "capacity " << buf.capacity() << " for n=" << n;
    for (float v : buf) EXPECT_EQ(v, 0.0f);
    pool.Release(std::move(buf));
  }
  // Two different large sizes in one geometric class recycle one buffer.
  std::vector<float> big = pool.AcquireZero(5000);
  const float* raw = big.data();
  pool.Release(std::move(big));
  std::vector<float> reused = pool.AcquireZero(7000);
  EXPECT_EQ(reused.data(), raw);
  EXPECT_EQ(reused.size(), 7000u);
  for (float v : reused) EXPECT_EQ(v, 0.0f);
}

TEST(GraphEngineTest, ArenaReusesReleasedBuffers) {
  tensor::BufferPool pool;
  std::vector<float> a = pool.AcquireZero(100);
  const float* ptr = a.data();
  EXPECT_EQ(pool.misses(), 1u);
  pool.Release(std::move(a));
  // Same size class: the exact buffer comes back, zeroed.
  std::vector<float> b = pool.AcquireZero(97);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(b.data(), ptr);
  for (float v : b) EXPECT_EQ(v, 0.0f);
  pool.Release(std::move(b));
}

TEST(GraphEngineTest, ArenaTracksOutstandingAndPeakBytes) {
  tensor::BufferPool pool;
  std::vector<float> a = pool.AcquireZero(16);
  std::vector<float> b = pool.AcquireZero(32);
  EXPECT_EQ(pool.outstanding_bytes(), (16 + 32) * sizeof(float));
  pool.Release(std::move(a));
  EXPECT_EQ(pool.outstanding_bytes(), 32 * sizeof(float));
  EXPECT_EQ(pool.peak_outstanding_bytes(), (16 + 32) * sizeof(float));
  pool.Release(std::move(b));
  EXPECT_EQ(pool.outstanding_bytes(), 0u);
}

TEST(GraphEngineTest, ArenaNeverAliasesTwoLiveNodeBuffers) {
  graph::GraphSession session(/*enabled=*/true);
  util::Rng rng(11);
  Var x = Var::Leaf(RandomTensor(rng, 6, 8), /*requires_grad=*/true);
  Var y = Var::Constant(RandomTensor(rng, 6, 8));
  // Every intermediate is held in a Var, so all stay live simultaneously
  // (held handles also veto buffer-stealing fusion -- that is the point).
  Var a = autodiff::Add(x, y);
  Var b = autodiff::Mul(a, y);
  Var c = autodiff::Exp(autodiff::MulScalar(b, 0.25f));
  Var d = autodiff::SoftmaxRows(c);
  Var loss = autodiff::SumAll(d);
  ASSERT_EQ(loss.value().numel(), 1);  // forces the whole segment
  std::set<const float*> buffers;
  for (const Var* v : {&x, &y, &a, &b, &c, &d, &loss}) {
    ASSERT_FALSE(v->value().empty());
    EXPECT_TRUE(buffers.insert(v->value().data()).second)
        << "two live nodes share a buffer";
  }
}

TEST(GraphEngineTest, ArenaRecyclesBuffersAcrossSteps) {
  graph::GraphSession session(/*enabled=*/true);
  util::Rng rng(12);
  const Tensor input = RandomTensor(rng, 16, 16);
  for (int step = 0; step < 3; ++step) {
    Var x = Var::Leaf(input, /*requires_grad=*/true);
    Var loss =
        autodiff::SumAll(autodiff::SoftmaxRows(autodiff::MulScalar(x, 2.0f)));
    autodiff::Backward(loss);
  }
  // After warmup, step-shaped buffers come from the pool, not the heap.
  EXPECT_GT(session.arena().hits(), 0u);
}

// ---------------------------------------------------------------------------
// GraphEngineTest: plans, fusion, hoisting.
// ---------------------------------------------------------------------------

graph::SegmentPlan PlanOfChain(uint64_t seed) {
  graph::GraphSession session(/*enabled=*/true);
  util::Rng rng(seed);
  Var x = Var::Leaf(RandomTensor(rng, 5, 7), /*requires_grad=*/true);
  Var out = autodiff::SumAll(
      autodiff::Exp(autodiff::MulScalar(autodiff::SoftmaxRows(x), 0.5f)));
  EXPECT_EQ(out.value().numel(), 1);
  return session.last_plan();
}

TEST(GraphEngineTest, SegmentPlansAreDeterministicAcrossSessions) {
  const graph::SegmentPlan first = PlanOfChain(21);
  const graph::SegmentPlan second = PlanOfChain(22);  // different values
  EXPECT_NE(first.signature, 0u);
  EXPECT_EQ(first.signature, second.signature)
      << "plan signature must depend on structure, not values";
  EXPECT_EQ(first.fuse_with_parent0, second.fuse_with_parent0);
}

TEST(GraphEngineTest, PlanCacheHitsOnRepeatedStepShapes) {
  graph::GraphSession session(/*enabled=*/true);
  util::Rng rng(23);
  for (int step = 0; step < 4; ++step) {
    Var x = Var::Leaf(RandomTensor(rng, 4, 6), /*requires_grad=*/true);
    Var loss = autodiff::SumAll(autodiff::Tanh(autodiff::MulScalar(x, 1.5f)));
    autodiff::Backward(loss);
  }
  EXPECT_EQ(session.stats().plans_compiled, 1u);
  EXPECT_GE(session.stats().plan_hits, 3u);
}

TEST(GraphEngineTest, FusionStealsSingleUseBuffersOnly) {
  graph::GraphSession session(/*enabled=*/true);
  util::Rng rng(24);
  {
    // Nested chain, intermediates not held: Exp may steal MulScalar's
    // buffer (MulScalar's backward needs neither value).
    Var x = Var::Leaf(RandomTensor(rng, 8, 8), /*requires_grad=*/true);
    Var loss = autodiff::SumAll(autodiff::Exp(autodiff::MulScalar(x, 0.5f)));
    EXPECT_EQ(loss.value().numel(), 1);
    EXPECT_GE(session.stats().ops_fused, 1u);
  }
  const uint64_t fused_before = session.stats().ops_fused;
  {
    // Holding the intermediate must veto the steal: the handle could read
    // the value after the child consumed it.
    Var x = Var::Leaf(RandomTensor(rng, 8, 8), /*requires_grad=*/true);
    Var held = autodiff::MulScalar(x, 0.5f);
    Var loss = autodiff::SumAll(autodiff::Exp(held));
    EXPECT_EQ(loss.value().numel(), 1);
    EXPECT_FALSE(held.value().empty()) << "held value must stay readable";
    EXPECT_EQ(session.stats().ops_fused, fused_before);
  }
}

TEST(GraphEngineTest, ExpFamilyValuesAreNeverElidedAsFusionSources) {
  // Exp's backward reads its own output, so a downstream in-place op must
  // not steal it even when it is single-use and unheld (DESIGN.md §14.2).
  graph::GraphSession session(/*enabled=*/true);
  util::Rng rng(25);
  Var x = Var::Leaf(RandomTensor(rng, 6, 6), /*requires_grad=*/true);
  Var loss = autodiff::SumAll(autodiff::MulScalar(autodiff::Exp(x), 2.0f));
  autodiff::Backward(loss);
  EXPECT_EQ(session.stats().ops_fused, 0u);
  EXPECT_FALSE(x.grad().empty());
}

TEST(GraphEngineTest, HoistCacheMemoizesInvariantChains) {
  graph::GraphSession session(/*enabled=*/true);
  util::Rng rng(26);
  Var frozen = Var::Constant(RandomTensor(rng, 8, 4));
  autodiff::MarkInvariant(frozen);
  Tensor first_value;
  for (int step = 0; step < 3; ++step) {
    Var product = autodiff::MatMul(frozen, frozen, /*trans_a=*/true);
    Var x = Var::Leaf(RandomTensor(rng, 4, 4), /*requires_grad=*/true);
    Var loss = autodiff::SumAll(autodiff::Mul(product, x));
    autodiff::Backward(loss);
    if (step == 0) first_value = product.value();
    ExpectBitwise(first_value, product.value(), "hoisted product");
  }
  EXPECT_EQ(session.stats().hoist_misses, 1u)
      << "the invariant product must execute exactly once";
  EXPECT_GE(session.stats().hoist_hits, 2u);
}

TEST(GraphEngineTest, MutableValueInvalidatesTheHoistCache) {
  graph::GraphSession session(/*enabled=*/true);
  util::Rng rng(27);
  Var frozen = Var::Constant(Tensor::Full(3, 3, 1.0f));
  autodiff::MarkInvariant(frozen);
  Var p1 = autodiff::MulScalar(frozen, 2.0f);
  EXPECT_EQ(p1.value().at(0, 0), 2.0f);
  frozen.mutable_value().Fill(5.0f);  // bumps the leaf version
  Var p2 = autodiff::MulScalar(frozen, 2.0f);
  EXPECT_EQ(p2.value().at(0, 0), 10.0f)
      << "stale hoist-cache entry served after mutation";
}

TEST(GraphEngineTest, GradOfRequiresGradChainsIsExactDespiteFusion) {
  // Backward runs after fusion moved buffers around; gradients must land
  // on the leaves regardless.
  graph::GraphSession session(/*enabled=*/true);
  util::Rng rng(28);
  const Tensor input = RandomTensor(rng, 4, 4);
  Var x = Var::Leaf(input, /*requires_grad=*/true);
  Var loss = autodiff::SumAll(autodiff::Tanh(autodiff::MulScalar(x, 0.5f)));
  autodiff::Backward(loss);
  ASSERT_FALSE(x.grad().empty());
  // d/dx sum(tanh(x/2)) = (1 - tanh^2(x/2)) / 2.
  for (int64_t i = 0; i < input.numel(); ++i) {
    const float t = std::tanh(input.data()[i] * 0.5f);
    EXPECT_NEAR(x.grad().data()[i], (1.0f - t * t) * 0.5f, 1e-6f);
  }
}

// ---------------------------------------------------------------------------
// GraphDifferentialTest: per-op bitwise tape-vs-graph.
// ---------------------------------------------------------------------------

struct OpCase {
  std::string name;
  std::vector<std::pair<int64_t, int64_t>> shapes;
  bool positive = false;  // inputs biased positive (log/sqrt domains)
  std::function<Var(const std::vector<Var>&)> build;
};

std::vector<OpCase> AllOpCases() {
  using namespace autodiff;  // NOLINT: op-dense tables
  auto mask_checker = [](int64_t rows, int64_t cols) {
    Tensor m(rows, cols);
    for (int64_t i = 0; i < m.numel(); ++i) m.data()[i] = (i % 3) ? 1.f : 0.f;
    return m;
  };
  std::vector<OpCase> cases;
  auto add = [&cases](std::string name,
                      std::vector<std::pair<int64_t, int64_t>> shapes,
                      std::function<Var(const std::vector<Var>&)> build,
                      bool positive = false) {
    cases.push_back({std::move(name), std::move(shapes), positive,
                     std::move(build)});
  };
  add("Add", {{3, 4}, {3, 4}},
      [](const std::vector<Var>& v) { return Add(v[0], v[1]); });
  add("Sub", {{3, 4}, {3, 4}},
      [](const std::vector<Var>& v) { return Sub(v[0], v[1]); });
  add("Mul", {{3, 4}, {3, 4}},
      [](const std::vector<Var>& v) { return Mul(v[0], v[1]); });
  add("Div", {{3, 4}, {3, 4}},
      [](const std::vector<Var>& v) { return Div(v[0], v[1]); },
      /*positive=*/true);
  add("AddScalar", {{3, 4}},
      [](const std::vector<Var>& v) { return AddScalar(v[0], 0.75f); });
  add("MulScalar", {{3, 4}},
      [](const std::vector<Var>& v) { return MulScalar(v[0], -1.25f); });
  add("MatMul", {{3, 4}, {4, 5}},
      [](const std::vector<Var>& v) { return MatMul(v[0], v[1]); });
  add("MatMulTransA", {{4, 3}, {4, 5}}, [](const std::vector<Var>& v) {
    return MatMul(v[0], v[1], true, false);
  });
  add("MatMulTransB", {{3, 4}, {5, 4}}, [](const std::vector<Var>& v) {
    return MatMul(v[0], v[1], false, true);
  });
  add("MatMulTransAB", {{4, 3}, {5, 4}}, [](const std::vector<Var>& v) {
    return MatMul(v[0], v[1], true, true);
  });
  add("Transpose", {{3, 5}},
      [](const std::vector<Var>& v) { return Transpose(v[0]); });
  add("Exp", {{3, 4}},
      [](const std::vector<Var>& v) { return Exp(v[0]); });
  add("Log", {{3, 4}},
      [](const std::vector<Var>& v) { return Log(v[0]); },
      /*positive=*/true);
  add("Square", {{3, 4}},
      [](const std::vector<Var>& v) { return Square(v[0]); });
  add("Sqrt", {{3, 4}},
      [](const std::vector<Var>& v) { return Sqrt(v[0]); },
      /*positive=*/true);
  add("Rsqrt", {{3, 4}},
      [](const std::vector<Var>& v) { return Rsqrt(v[0]); },
      /*positive=*/true);
  add("Relu", {{3, 4}},
      [](const std::vector<Var>& v) { return Relu(v[0]); });
  add("Selu", {{3, 4}},
      [](const std::vector<Var>& v) { return Selu(v[0]); });
  add("Softplus", {{3, 4}},
      [](const std::vector<Var>& v) { return Softplus(v[0]); });
  add("Tanh", {{3, 4}},
      [](const std::vector<Var>& v) { return Tanh(v[0]); });
  add("Sigmoid", {{3, 4}},
      [](const std::vector<Var>& v) { return Sigmoid(v[0]); });
  add("SoftmaxRows", {{3, 6}},
      [](const std::vector<Var>& v) { return SoftmaxRows(v[0]); });
  add("LogSoftmaxRows", {{3, 6}},
      [](const std::vector<Var>& v) { return LogSoftmaxRows(v[0]); });
  add("MaskedLogSumExpRows", {{4, 6}},
      [mask_checker](const std::vector<Var>& v) {
        return MaskedLogSumExpRows(v[0], mask_checker(4, 6));
      });
  add("LogSumExpRows", {{4, 6}},
      [](const std::vector<Var>& v) { return LogSumExpRows(v[0]); });
  add("SumAll", {{3, 4}},
      [](const std::vector<Var>& v) { return SumAll(v[0]); });
  add("MeanAll", {{3, 4}},
      [](const std::vector<Var>& v) { return MeanAll(v[0]); });
  add("RowSum", {{3, 4}},
      [](const std::vector<Var>& v) { return RowSum(v[0]); });
  add("ColSum", {{3, 4}},
      [](const std::vector<Var>& v) { return ColSum(v[0]); });
  add("ColMean", {{3, 4}},
      [](const std::vector<Var>& v) { return ColMean(v[0]); });
  add("BroadcastColAdd", {{4, 5}, {4, 1}}, [](const std::vector<Var>& v) {
    return BroadcastColAdd(v[0], v[1]);
  });
  add("BroadcastColSub", {{4, 5}, {4, 1}}, [](const std::vector<Var>& v) {
    return BroadcastColSub(v[0], v[1]);
  });
  add("BroadcastColMul", {{4, 5}, {4, 1}}, [](const std::vector<Var>& v) {
    return BroadcastColMul(v[0], v[1]);
  });
  add("BroadcastColDiv", {{4, 5}, {4, 1}},
      [](const std::vector<Var>& v) {
        return BroadcastColDiv(v[0], v[1]);
      },
      /*positive=*/true);
  add("BroadcastRowAdd", {{4, 5}, {1, 5}}, [](const std::vector<Var>& v) {
    return BroadcastRowAdd(v[0], v[1]);
  });
  add("BroadcastRowSub", {{4, 5}, {1, 5}}, [](const std::vector<Var>& v) {
    return BroadcastRowSub(v[0], v[1]);
  });
  add("BroadcastRowMul", {{4, 5}, {1, 5}}, [](const std::vector<Var>& v) {
    return BroadcastRowMul(v[0], v[1]);
  });
  add("BroadcastRowDiv", {{4, 5}, {1, 5}},
      [](const std::vector<Var>& v) {
        return BroadcastRowDiv(v[0], v[1]);
      },
      /*positive=*/true);
  add("RowL2Normalize", {{4, 6}},
      [](const std::vector<Var>& v) { return RowL2Normalize(v[0]); });
  add("ConcatRows", {{2, 4}, {3, 4}}, [](const std::vector<Var>& v) {
    return ConcatRows({v[0], v[1]});
  });
  add("SelectColumns", {{3, 5}}, [](const std::vector<Var>& v) {
    return SelectColumns(v[0], {0, 2, 2, 4, 1});
  });
  add("ApplyMask", {{4, 6}}, [mask_checker](const std::vector<Var>& v) {
    return ApplyMask(v[0], mask_checker(4, 6));
  });
  return cases;
}

struct OpRun {
  Tensor value;
  std::vector<Tensor> grads;
};

OpRun RunOpOnce(const OpCase& c, const std::vector<Tensor>& inputs,
                bool graph_engine) {
  graph::GraphSession session(graph_engine);
  std::vector<Var> leaves;
  for (const Tensor& t : inputs) {
    leaves.push_back(Var::Leaf(t, /*requires_grad=*/true));
  }
  Var out = c.build(leaves);
  Var loss = (out.rows() == 1 && out.cols() == 1) ? out
                                                  : autodiff::SumAll(out);
  OpRun run;
  run.value = out.value();
  autodiff::Backward(loss);
  for (const Var& leaf : leaves) run.grads.push_back(leaf.grad());
  return run;
}

TEST(GraphDifferentialTest, EveryOpMatchesTheTapeBitwise) {
  uint64_t seed = 0x9e3779b9;
  for (const OpCase& c : AllOpCases()) {
    SCOPED_TRACE(c.name);
    util::Rng rng(seed++);
    std::vector<Tensor> inputs;
    for (const auto& [rows, cols] : c.shapes) {
      inputs.push_back(RandomTensor(rng, rows, cols, c.positive));
    }
    const OpRun tape = RunOpOnce(c, inputs, /*graph_engine=*/false);
    const OpRun graph = RunOpOnce(c, inputs, /*graph_engine=*/true);
    ExpectBitwise(tape.value, graph.value, c.name + " value");
    ASSERT_EQ(tape.grads.size(), graph.grads.size());
    for (size_t i = 0; i < tape.grads.size(); ++i) {
      ExpectBitwise(tape.grads[i], graph.grads[i],
                    c.name + " grad[" + std::to_string(i) + "]");
    }
  }
}

// ---------------------------------------------------------------------------
// GraphDifferentialTest: fused chains vs their unfused composition.
// ---------------------------------------------------------------------------

// Each entry is an op that the planner may fuse with its producer (it can
// run in place and its backward does not read parents[0]). The chain roots
// in AddScalar/MulScalar producers whose buffers are legal to steal.
struct FusedCase {
  std::string name;
  std::function<Var(const Var&)> build;  // leaf -> scalar loss
};

std::vector<FusedCase> FusedChainCases() {
  using namespace autodiff;  // NOLINT
  Tensor mask(3, 4);
  for (int64_t i = 0; i < mask.numel(); ++i) mask.data()[i] = (i % 2) * 1.0f;
  return {
      {"AddIntoPending",
       [](const Var& x) {
         Var b = Var::Constant(Tensor::Full(3, 4, 0.5f));
         return SumAll(Add(MulScalar(x, 1.5f), b));
       }},
      {"SubIntoPending",
       [](const Var& x) {
         Var b = Var::Constant(Tensor::Full(3, 4, 0.25f));
         return SumAll(Sub(MulScalar(x, 0.5f), b));
       }},
      {"AddScalarChain",
       [](const Var& x) {
         return SumAll(AddScalar(MulScalar(x, 2.0f), 0.3f));
       }},
      {"MulScalarChain",
       [](const Var& x) {
         return SumAll(MulScalar(AddScalar(x, 0.2f), 1.7f));
       }},
      {"ExpOfScaled",
       [](const Var& x) { return SumAll(Exp(MulScalar(x, 0.5f))); }},
      {"SqrtOfShifted",
       [](const Var& x) {
         return SumAll(Sqrt(AddScalar(Square(x), 1.0f)));
       }},
      {"RsqrtOfShifted",
       [](const Var& x) {
         return SumAll(Rsqrt(AddScalar(Square(x), 1.0f)));
       }},
      {"TanhOfScaled",
       [](const Var& x) { return SumAll(Tanh(MulScalar(x, 0.8f))); }},
      {"SigmoidOfScaled",
       [](const Var& x) { return SumAll(Sigmoid(MulScalar(x, 1.2f))); }},
      {"SoftmaxOfScaled",
       [](const Var& x) {
         return SumAll(Square(SoftmaxRows(MulScalar(x, 1.3f))));
       }},
      {"LogSoftmaxOfScaled",
       [](const Var& x) {
         return MulScalar(SumAll(LogSoftmaxRows(MulScalar(x, 0.9f))), 0.25f);
       }},
      {"MaskOfShifted",
       [mask](const Var& x) {
         return SumAll(ApplyMask(AddScalar(x, 0.1f), mask));
       }},
  };
}

TEST(GraphDifferentialTest, FusedChainsPassNumericGradCheck) {
  for (const FusedCase& c : FusedChainCases()) {
    SCOPED_TRACE(c.name);
    util::Rng rng(HashOf(c.name));
    const Tensor input = RandomTensor(rng, 3, 4);
    // First confirm the chain actually fuses under the graph engine...
    uint64_t fused = 0;
    {
      graph::GraphSession session(/*enabled=*/true);
      Var x = Var::Leaf(input, /*requires_grad=*/true);
      Var loss = c.build(x);
      autodiff::Backward(loss);
      fused = session.stats().ops_fused;
    }
    EXPECT_GE(fused, 1u) << c.name << " did not fuse";
    // ...then check analytic-vs-numeric gradients with fusion active.
    graph::GraphSession session(/*enabled=*/true);
    const tensor::GradCheckResult graph_check =
        tensor::CheckGradient(c.build, input);
    EXPECT_TRUE(graph_check.ok)
        << c.name << " grad check under fusion: max_abs="
        << graph_check.max_abs_error << " max_rel="
        << graph_check.max_rel_error;
  }
}

TEST(GraphDifferentialTest, FusedChainsMatchTheTapeBitwise) {
  for (const FusedCase& c : FusedChainCases()) {
    SCOPED_TRACE(c.name);
    util::Rng rng(HashOf(c.name) + 1);
    const Tensor input = RandomTensor(rng, 3, 4);
    Tensor tape_value, tape_grad;
    {
      Var x = Var::Leaf(input, /*requires_grad=*/true);
      Var loss = c.build(x);
      tape_value = loss.value();
      autodiff::Backward(loss);
      tape_grad = x.grad();
    }
    graph::GraphSession session(/*enabled=*/true);
    Var x = Var::Leaf(input, /*requires_grad=*/true);
    Var loss = c.build(x);
    ExpectBitwise(tape_value, loss.value(), c.name + " loss");
    autodiff::Backward(loss);
    ExpectBitwise(tape_grad, x.grad(), c.name + " grad");
  }
}

// ---------------------------------------------------------------------------
// GraphDifferentialTest: end-to-end training.
// ---------------------------------------------------------------------------

struct TrainRun {
  double final_loss = 0.0;
  Tensor beta;
  Tensor theta;
  std::vector<double> coherence;
};

struct TrainFixture {
  text::SyntheticDataset dataset;
  embed::WordEmbeddings embeddings;
  eval::NpmiMatrix test_npmi;
};

const TrainFixture& SharedFixture() {
  static const TrainFixture* fixture = [] {
    text::SyntheticDataset dataset =
        text::GenerateSynthetic(text::Preset20NG(0.1));
    const text::BowCorpus reference = text::GenerateReferenceCorpus(
        text::Preset20NG(0.1), dataset.train.vocab());
    embed::WordEmbeddings embeddings =
        embed::WordEmbeddings::Train(reference, [] {
          embed::EmbeddingConfig c;
          c.dimension = 16;
          return c;
        }());
    eval::NpmiMatrix test_npmi = eval::NpmiMatrix::Compute(dataset.test);
    return new TrainFixture{std::move(dataset), std::move(embeddings),
                            std::move(test_npmi)};
  }();
  return *fixture;
}

// Trains a fresh ContraTopic-ETM under the given engine/backend/thread
// configuration; workers > 0 routes through the data-parallel trainer.
TrainRun TrainLeg(ExecEngine engine, tensor::KernelBackendKind backend,
                  int threads, int workers) {
  const TrainFixture& f = SharedFixture();
  tensor::ScopedExecEngine scoped_engine(engine);
  tensor::ScopedKernelBackend scoped_backend(backend);
  util::ThreadPool::SetGlobalNumThreads(threads);

  topicmodel::TrainConfig tc;
  tc.num_topics = 8;
  tc.epochs = 1;
  tc.batch_size = 128;
  tc.encoder_hidden = 32;
  tc.encoder_layers = 1;
  auto model = core::MakeContraTopicEtm(tc, f.embeddings);

  TrainRun run;
  if (workers > 0) {
    dist::Options options;
    options.workers = workers;
    options.num_shards = 4;
    dist::DataParallelTrainer trainer(model.get(), options);
    util::StatusOr<topicmodel::TrainStats> stats =
        trainer.Train(f.dataset.train);
    CHECK(stats.ok()) << stats.status().ToString();
    run.final_loss = stats->final_loss;
  } else {
    const topicmodel::TrainStats stats = model->Train(f.dataset.train);
    CHECK(stats.status.ok()) << stats.status.ToString();
    run.final_loss = stats.final_loss;
  }
  run.beta = model->Beta();
  run.theta = model->InferTheta(f.dataset.test);
  run.coherence = eval::PerTopicCoherence(run.beta, f.test_npmi);
  util::ThreadPool::SetGlobalNumThreads(0);  // restore default
  return run;
}

void ExpectRunsBitwiseEqual(const TrainRun& want, const TrainRun& got) {
  EXPECT_EQ(want.final_loss, got.final_loss);
  ExpectBitwise(want.beta, got.beta, "beta");
  ExpectBitwise(want.theta, got.theta, "theta");
  ASSERT_EQ(want.coherence.size(), got.coherence.size());
  for (size_t k = 0; k < want.coherence.size(); ++k) {
    EXPECT_EQ(want.coherence[k], got.coherence[k]) << "topic " << k;
  }
}

TEST(GraphDifferentialTest, TrainingMatchesTapeAcrossBackendsAndThreads) {
  const TrainRun tape = TrainLeg(ExecEngine::kTape,
                                 tensor::KernelBackendKind::kScalar,
                                 /*threads=*/1, /*workers=*/0);
  ASSERT_GT(tape.beta.numel(), 0);
  ASSERT_TRUE(std::isfinite(tape.final_loss));
  struct Leg {
    tensor::KernelBackendKind backend;
    int threads;
  };
  const std::vector<Leg> legs = {
      {tensor::KernelBackendKind::kScalar, 1},
      {tensor::KernelBackendKind::kScalar, 4},
      {tensor::BestSupportedBackend(), 4},
  };
  for (const Leg& leg : legs) {
    SCOPED_TRACE(std::string(tensor::KernelBackendName(leg.backend)) +
                 " threads=" + std::to_string(leg.threads));
    const TrainRun graph =
        TrainLeg(ExecEngine::kGraph, leg.backend, leg.threads, /*workers=*/0);
    ExpectRunsBitwiseEqual(tape, graph);
  }
}

TEST(GraphDifferentialTest, DistributedTrainingMatchesTapeAcrossEngines) {
#ifdef CT_SKIP_FORK_TESTS
  GTEST_SKIP() << "fork-based legs are disabled under ThreadSanitizer";
#else
  const TrainRun tape =
      TrainLeg(ExecEngine::kTape, tensor::KernelBackendKind::kScalar,
               /*threads=*/1, /*workers=*/1);
  ASSERT_GT(tape.beta.numel(), 0);
  for (int workers : {1, 2}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const TrainRun graph =
        TrainLeg(ExecEngine::kGraph, tensor::KernelBackendKind::kScalar,
                 /*threads=*/1, workers);
    ExpectRunsBitwiseEqual(tape, graph);
  }
#endif
}

}  // namespace
}  // namespace contratopic
