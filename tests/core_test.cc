#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/contrastive_loss.h"
#include "core/contratopic.h"
#include "core/subset_sampler.h"
#include "tensor/grad_check.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace contratopic {
namespace core {
namespace {

using autodiff::Backward;
using autodiff::Log;
using autodiff::SumAll;
using autodiff::Var;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Subset sampler (Gumbel relaxed top-v, Eqs. 3-5).
// ---------------------------------------------------------------------------

TEST(SubsetSamplerTest, StepsAreRelaxedOneHots) {
  util::Rng rng(1);
  const Tensor logits = Tensor::RandNormal(4, 30, rng, 0.0f, 2.0f);
  util::Rng sample_rng(2);
  const SubsetSample sample = SampleTopVWithoutReplacement(
      Var::Constant(logits), 5, 0.5f, sample_rng);
  ASSERT_EQ(sample.steps.size(), 5u);
  for (const auto& step : sample.steps) {
    for (int64_t r = 0; r < step.rows(); ++r) {
      double sum = 0.0;
      for (int64_t c = 0; c < step.cols(); ++c) {
        EXPECT_GE(step.value().at(r, c), 0.0f);
        sum += step.value().at(r, c);
      }
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}

TEST(SubsetSamplerTest, VHotSumsToV) {
  util::Rng rng(3);
  const Tensor logits = Tensor::RandNormal(3, 20, rng);
  util::Rng sample_rng(4);
  const SubsetSample sample = SampleTopVWithoutReplacement(
      Var::Constant(logits), 7, 0.5f, sample_rng);
  for (int64_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 20; ++c) sum += sample.v_hot.value().at(r, c);
    EXPECT_NEAR(sum, 7.0, 1e-3);
  }
}

TEST(SubsetSamplerTest, LowTemperatureSamplesWithoutReplacement) {
  // At low temperature the relaxed steps approach hard one-hots on
  // *distinct* coordinates (the "without replacement" property).
  util::Rng rng(5);
  const Tensor logits = Tensor::RandNormal(2, 40, rng, 0.0f, 3.0f);
  util::Rng sample_rng(6);
  const SubsetSample sample = SampleTopVWithoutReplacement(
      Var::Constant(logits), 6, 0.05f, sample_rng);
  for (int64_t r = 0; r < 2; ++r) {
    std::set<int> argmaxes;
    for (const auto& step : sample.steps) {
      int64_t best = 0;
      for (int64_t c = 1; c < 40; ++c) {
        if (step.value().at(r, c) > step.value().at(r, best)) best = c;
      }
      argmaxes.insert(static_cast<int>(best));
    }
    EXPECT_EQ(argmaxes.size(), 6u) << "row " << r << " repeated a sample";
  }
}

TEST(SubsetSamplerTest, HighWeightItemsSampledMoreOften) {
  // Item 0 has much higher weight; it should be in the subset nearly always.
  Tensor logits(1, 10);
  logits.at(0, 0) = 5.0f;
  util::Rng rng(7);
  int hits = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const SubsetSample sample = SampleTopVWithoutReplacement(
        Var::Constant(logits), 3, 0.1f, rng);
    // Check if item 0 is the argmax of any step.
    for (const auto& step : sample.steps) {
      int64_t best = 0;
      for (int64_t c = 1; c < 10; ++c) {
        if (step.value().at(0, c) > step.value().at(0, best)) best = c;
      }
      if (best == 0) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GT(hits, trials * 4 / 5);
}

TEST(SubsetSamplerTest, StraightThroughForwardIsHard) {
  util::Rng rng(8);
  const Tensor logits = Tensor::RandNormal(2, 15, rng);
  util::Rng sample_rng(9);
  const SubsetSample sample = SampleTopVWithoutReplacement(
      Var::Constant(logits), 3, 0.5f, sample_rng, /*hard=*/true);
  for (const auto& step : sample.steps) {
    for (int64_t r = 0; r < 2; ++r) {
      int ones = 0;
      for (int64_t c = 0; c < 15; ++c) {
        const float v = step.value().at(r, c);
        EXPECT_TRUE(std::fabs(v) < 1e-6f || std::fabs(v - 1.0f) < 1e-6f);
        if (v > 0.5f) ++ones;
      }
      EXPECT_EQ(ones, 1);
    }
  }
}

TEST(SubsetSamplerTest, GradientMatchesFiniteDifferences) {
  // Deterministic noise: rebuild the Rng with the same seed inside fn so
  // the finite-difference evaluations see identical Gumbel draws.
  const Tensor kernel = [] {
    util::Rng rng(10);
    Tensor k = Tensor::RandNormal(12, 12, rng, 0.0f, 0.5f);
    for (int i = 0; i < 12; ++i) {
      for (int j = 0; j < i; ++j) {
        k.at(i, j) = k.at(j, i);
      }
      k.at(i, i) = 1.0f;
    }
    return k;
  }();
  auto fn = [&](const Var& logits) {
    util::Rng rng(42);
    const SubsetSample sample =
        SampleTopVWithoutReplacement(logits, 3, 0.7f, rng);
    return TopicContrastiveLoss(sample.steps, kernel,
                                ContrastVariant::kFull, 0.7f);
  };
  util::Rng input_rng(11);
  const Tensor input = Tensor::RandNormal(3, 12, input_rng);
  const auto result = tensor::CheckGradient(fn, input, 1e-2f, 8e-2f);
  EXPECT_TRUE(result.ok) << "rel=" << result.max_rel_error;
}

TEST(HardSampleTest, ReturnsDistinctIndices) {
  util::Rng rng(12);
  const Tensor logits = Tensor::RandNormal(5, 30, rng);
  const auto samples = HardSampleTopV(logits, 8, rng);
  ASSERT_EQ(samples.size(), 5u);
  for (const auto& row : samples) {
    std::set<int> unique(row.begin(), row.end());
    EXPECT_EQ(unique.size(), 8u);
  }
}

// ---------------------------------------------------------------------------
// Contrastive loss.
// ---------------------------------------------------------------------------

// Builds hard one-hot "samples": v steps of K x C where topic k samples
// the given word ids.
std::vector<Var> HardSamples(
    const std::vector<std::vector<int>>& words_per_topic, int vocab) {
  const int v = static_cast<int>(words_per_topic[0].size());
  const int k = static_cast<int>(words_per_topic.size());
  std::vector<Var> steps;
  for (int j = 0; j < v; ++j) {
    Tensor step(k, vocab);
    for (int topic = 0; topic < k; ++topic) {
      step.at(topic, words_per_topic[topic][j]) = 1.0f;
    }
    steps.push_back(Var::Constant(step));
  }
  return steps;
}

// Kernel with two word blocks: within-block similarity 0.8, across 0.
Tensor BlockKernel(int vocab, int block) {
  Tensor kernel(vocab, vocab);
  for (int i = 0; i < vocab; ++i) {
    for (int j = 0; j < vocab; ++j) {
      if (i == j) {
        kernel.at(i, j) = 1.0f;
      } else if (i / block == j / block) {
        kernel.at(i, j) = 0.8f;
      }
    }
  }
  return kernel;
}

TEST(ContrastiveLossTest, CoherentDistinctTopicsBeatJunkTopics) {
  const Tensor kernel = BlockKernel(12, 6);
  // Good: each topic samples within one block.
  const Var good = SumAll(TopicContrastiveLoss(
      HardSamples({{0, 1, 2}, {6, 7, 8}}, 12), kernel));
  // Junk: topics sample across blocks (no internal coherence).
  const Var junk = SumAll(TopicContrastiveLoss(
      HardSamples({{0, 6, 1}, {7, 2, 8}}, 12), kernel));
  EXPECT_LT(good.value().scalar(), junk.value().scalar());
}

TEST(ContrastiveLossTest, DuplicateTopicsPenalized) {
  const Tensor kernel = BlockKernel(12, 6);
  // Distinct coherent topics.
  const Var distinct = SumAll(TopicContrastiveLoss(
      HardSamples({{0, 1, 2}, {6, 7, 8}}, 12), kernel));
  // Duplicated topics (both on block 1): coherent but not diverse.
  const Var duplicated = SumAll(TopicContrastiveLoss(
      HardSamples({{0, 1, 2}, {3, 4, 5}}, 12), kernel));
  EXPECT_LT(distinct.value().scalar(), duplicated.value().scalar());
}

TEST(ContrastiveLossTest, PositiveOnlyIgnoresCrossTopicSimilarity) {
  const Tensor kernel = BlockKernel(12, 6);
  const Var distinct = SumAll(TopicContrastiveLoss(
      HardSamples({{0, 1, 2}, {6, 7, 8}}, 12), kernel,
      ContrastVariant::kPositiveOnly));
  const Var duplicated = SumAll(TopicContrastiveLoss(
      HardSamples({{0, 1, 2}, {3, 4, 5}}, 12), kernel,
      ContrastVariant::kPositiveOnly));
  // Both are equally coherent; the positive-only variant cannot tell them
  // apart (this is exactly why ContraTopic-P loses diversity in Table II).
  EXPECT_NEAR(distinct.value().scalar(), duplicated.value().scalar(), 1e-4);
}

TEST(ContrastiveLossTest, NegativeOnlyIgnoresIncoherence) {
  const Tensor kernel = BlockKernel(12, 6);
  // Coherent topics vs junk topics -- both perfectly "diverse" across
  // topics; the negative-only variant scores them the same.
  const Var coherent = SumAll(TopicContrastiveLoss(
      HardSamples({{0, 1, 2}, {6, 7, 8}}, 12), kernel,
      ContrastVariant::kNegativeOnly));
  const Var junk = SumAll(TopicContrastiveLoss(
      HardSamples({{0, 2, 4}, {6, 8, 10}}, 12), kernel,
      ContrastVariant::kNegativeOnly));
  // Topic words within blocks for 'junk' are still same-block here, so
  // craft true junk: one word from each block per topic.
  const Var true_junk = SumAll(TopicContrastiveLoss(
      HardSamples({{0, 6, 2}, {1, 8, 10}}, 12), kernel,
      ContrastVariant::kNegativeOnly));
  EXPECT_NEAR(coherent.value().scalar(), junk.value().scalar(), 0.5);
  (void)true_junk;
}

TEST(ContrastiveLossTest, ExpectationVariantPrefersDistinctTopics) {
  const Tensor kernel = BlockKernel(12, 6);
  Tensor distinct(2, 12);
  for (int w = 0; w < 6; ++w) {
    distinct.at(0, w) = 1.0f / 6;
    distinct.at(1, 6 + w) = 1.0f / 6;
  }
  Tensor duplicated(2, 12);
  for (int w = 0; w < 6; ++w) {
    duplicated.at(0, w) = 1.0f / 6;
    duplicated.at(1, w) = 1.0f / 6;
  }
  const float distinct_loss =
      ExpectationContrastiveLoss(Var::Constant(distinct), kernel)
          .value()
          .scalar();
  const float duplicated_loss =
      ExpectationContrastiveLoss(Var::Constant(duplicated), kernel)
          .value()
          .scalar();
  EXPECT_LT(distinct_loss, duplicated_loss);
}

TEST(ContrastiveLossTest, GradientPushesTowardCoherentWords) {
  // One topic's relaxed sample splits mass between an in-block word and an
  // out-of-block word; the gradient must favor the in-block word.
  const Tensor kernel = BlockKernel(8, 4);
  // Topic 0 anchored on words 0,1; topic 1 anchored on 4,5.
  Tensor step1(2, 8);
  step1.at(0, 0) = 1.0f;
  step1.at(1, 4) = 1.0f;
  Tensor step2(2, 8);
  step2.at(0, 1) = 1.0f;
  step2.at(1, 5) = 1.0f;
  // Step 3 for topic 0: half on word 2 (in-block), half on word 6
  // (out-of-block, inside topic 1's block).
  Tensor step3(2, 8);
  step3.at(0, 2) = 0.5f;
  step3.at(0, 6) = 0.5f;
  step3.at(1, 7) = 1.0f;
  Var step3_var = Var::Leaf(step3, /*requires_grad=*/true);
  Var loss = TopicContrastiveLoss(
      {Var::Constant(step1), Var::Constant(step2), step3_var}, kernel);
  Backward(loss);
  // d loss / d p(word 2) < d loss / d p(word 6): increasing the coherent
  // word's probability reduces the loss more.
  EXPECT_LT(step3_var.grad().at(0, 2), step3_var.grad().at(0, 6));
}

// ---------------------------------------------------------------------------
// ContraTopic options plumbing.
// ---------------------------------------------------------------------------

TEST(ContraTopicOptionsTest, VariantNames) {
  EXPECT_EQ(VariantName(Variant::kFull), "ContraTopic");
  EXPECT_EQ(VariantName(Variant::kPositiveOnly), "ContraTopic-P");
  EXPECT_EQ(VariantName(Variant::kNegativeOnly), "ContraTopic-N");
  EXPECT_EQ(VariantName(Variant::kInnerProduct), "ContraTopic-I");
  EXPECT_EQ(VariantName(Variant::kExpectation), "ContraTopic-S");
}

}  // namespace
}  // namespace core
}  // namespace contratopic
