// Chaos suite for distributed training (DESIGN.md §13): a worker killed
// mid-epoch by the deterministic "dist.worker_kill.rank<r>" fault site
// must be recoverable — via the trainer's auto-restart or a manual
// checkpoint resume — with a final model bitwise-identical to a run that
// was never interrupted. Transport corruption must stop the group with
// kDataLoss, never poison the trajectory.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/contratopic.h"
#include "dist/trainer.h"
#include "embed/word_embeddings.h"
#include "serve/checkpoint.h"
#include "text/synthetic.h"
#include "topicmodel/neural_base.h"
#include "util/fault.h"

#if defined(__SANITIZE_THREAD__)
#define CT_SKIP_FORK_TESTS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CT_SKIP_FORK_TESTS 1
#endif
#endif

namespace contratopic {
namespace {

using tensor::Tensor;

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.same_shape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

// One self-contained training world: dataset, embeddings, and a fresh
// ContraTopic model, rebuilt identically for every leg of a test.
struct World {
  World()
      : dataset(text::GenerateSynthetic(text::Preset20NG(0.1))),
        embeddings(embed::WordEmbeddings::Train(
            text::GenerateReferenceCorpus(text::Preset20NG(0.1),
                                          dataset.train.vocab()),
            [] {
              embed::EmbeddingConfig c;
              c.dimension = 16;
              return c;
            }())) {}

  // Small batches and three epochs give each worker several allreduce
  // calls per epoch, so a kill can be scheduled strictly between the
  // epoch-1 checkpoint and the end of training.
  std::unique_ptr<topicmodel::NeuralTopicModel> NewModel() const {
    topicmodel::TrainConfig tc;
    tc.num_topics = 8;
    tc.epochs = 3;
    tc.batch_size = 64;
    tc.encoder_hidden = 32;
    tc.encoder_layers = 1;
    return core::MakeContraTopicEtm(tc, embeddings);
  }

  int StepsPerEpoch() const { return dataset.train.num_docs() / 64; }

  text::SyntheticDataset dataset;
  embed::WordEmbeddings embeddings;
};

dist::Options BaseOptions(const World& world, const std::string& ckpt) {
  dist::Options options;
  options.workers = 2;
  options.num_shards = 4;
  options.checkpoint_path = ckpt;
  options.vocab = &world.dataset.train.vocab();
  return options;
}

struct RunResult {
  double final_loss = 0.0;
  Tensor beta;
  Tensor theta;
};

RunResult Snapshot(const World& world, topicmodel::NeuralTopicModel& model,
                   double final_loss) {
  RunResult r;
  r.final_loss = final_loss;
  r.beta = model.Beta();
  r.theta = model.InferTheta(world.dataset.test);
  return r;
}

TEST(DistChaosTest, AutoRestartRecoversBitwise) {
#ifdef CT_SKIP_FORK_TESTS
  GTEST_SKIP() << "fork-based legs are disabled under ThreadSanitizer";
#else
  util::FaultInjector::Global().Reset();
  const World world;
  const std::string ckpt =
      ::testing::TempDir() + "/dist_chaos_auto_restart.ckpt";

  // Reference: the same distributed run, never interrupted.
  auto reference_model = world.NewModel();
  dist::DataParallelTrainer reference_trainer(
      reference_model.get(), BaseOptions(world, ckpt + ".ref"));
  util::StatusOr<topicmodel::TrainStats> reference_stats =
      reference_trainer.Train(world.dataset.train);
  ASSERT_TRUE(reference_stats.ok()) << reference_stats.status().ToString();
  ASSERT_TRUE(reference_stats->status.ok())
      << reference_stats->status.ToString();
  const RunResult reference =
      Snapshot(world, *reference_model, reference_stats->final_loss);

  // Chaos leg: rank 1 dies two steps into epoch 2 (after the epoch-1
  // checkpoint exists), and the trainer restarts the group from it.
  util::FaultInjector::Global().Arm("dist.worker_kill.rank1", [&] {
    util::FaultSpec spec;
    spec.every_nth = world.StepsPerEpoch() + 2;
    spec.max_fires = 1;
    return spec;
  }());
  auto model = world.NewModel();
  dist::Options options = BaseOptions(world, ckpt);
  options.auto_restart = true;
  dist::DataParallelTrainer trainer(model.get(), options);
  util::StatusOr<topicmodel::TrainStats> stats =
      trainer.Train(world.dataset.train);
  util::FaultInjector::Global().Reset();

  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->status.ok()) << stats->status.ToString();
  EXPECT_FALSE(stats->interrupted);
  EXPECT_EQ(trainer.restarts(), 1);

  const RunResult recovered = Snapshot(world, *model, stats->final_loss);
  EXPECT_EQ(reference.final_loss, recovered.final_loss);
  ExpectBitwiseEqual(reference.beta, recovered.beta);
  ExpectBitwiseEqual(reference.theta, recovered.theta);
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".ref").c_str());
#endif
}

TEST(DistChaosTest, ManualResumeFromCheckpointMatchesBitwise) {
#ifdef CT_SKIP_FORK_TESTS
  GTEST_SKIP() << "fork-based legs are disabled under ThreadSanitizer";
#else
  util::FaultInjector::Global().Reset();
  const World world;
  const std::string ckpt =
      ::testing::TempDir() + "/dist_chaos_manual_resume.ckpt";

  auto reference_model = world.NewModel();
  dist::DataParallelTrainer reference_trainer(
      reference_model.get(), BaseOptions(world, ckpt + ".ref"));
  util::StatusOr<topicmodel::TrainStats> reference_stats =
      reference_trainer.Train(world.dataset.train);
  ASSERT_TRUE(reference_stats.ok()) << reference_stats.status().ToString();
  const RunResult reference =
      Snapshot(world, *reference_model, reference_stats->final_loss);

  // Kill rank 1 mid-epoch 2 with no auto-restart: the group stops with
  // interrupted stats and the epoch-1 checkpoint on disk.
  util::FaultInjector::Global().Arm("dist.worker_kill.rank1", [&] {
    util::FaultSpec spec;
    spec.every_nth = world.StepsPerEpoch() + 2;
    spec.max_fires = 1;
    return spec;
  }());
  auto dying_model = world.NewModel();
  dist::DataParallelTrainer dying_trainer(dying_model.get(),
                                          BaseOptions(world, ckpt));
  util::StatusOr<topicmodel::TrainStats> dying_stats =
      dying_trainer.Train(world.dataset.train);
  util::FaultInjector::Global().Reset();
  ASSERT_TRUE(dying_stats.ok()) << dying_stats.status().ToString();
  EXPECT_TRUE(dying_stats->interrupted);
  EXPECT_EQ(dying_stats->status.code(), util::StatusCode::kUnavailable)
      << dying_stats->status.ToString();

  // A fresh process recovers: rebuild the model from the checkpoint and
  // resume the distributed run from its training state.
  util::StatusOr<serve::Checkpoint> checkpoint = serve::ReadCheckpoint(ckpt);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  ASSERT_TRUE(checkpoint->has_training_state);
  util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> resumed =
      serve::ResumeModel(*checkpoint);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  dist::DataParallelTrainer resume_trainer(resumed->get(),
                                           BaseOptions(world, ckpt));
  util::StatusOr<topicmodel::TrainStats> resume_stats =
      resume_trainer.Resume(world.dataset.train,
                            checkpoint->training_state);
  ASSERT_TRUE(resume_stats.ok()) << resume_stats.status().ToString();
  EXPECT_TRUE(resume_stats->status.ok()) << resume_stats->status.ToString();

  const RunResult recovered =
      Snapshot(world, **resumed, resume_stats->final_loss);
  EXPECT_EQ(reference.final_loss, recovered.final_loss);
  ExpectBitwiseEqual(reference.beta, recovered.beta);
  ExpectBitwiseEqual(reference.theta, recovered.theta);
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".ref").c_str());
#endif
}

TEST(DistChaosTest, TransportCorruptionStopsWithDataLoss) {
#ifdef CT_SKIP_FORK_TESTS
  GTEST_SKIP() << "fork-based legs are disabled under ThreadSanitizer";
#else
  util::FaultInjector::Global().Reset();
  const World world;
  // every_nth=2: the hub's first Recv (call 0, the sharded kernel-build
  // counts frame) passes; its second (call 1, the first training-step
  // partial) is corrupted. The CRC catches the flipped byte and the
  // group stops — a corrupt frame must never be folded into the model.
  util::FaultInjector::Global().Arm("dist.recv_corrupt", [] {
    util::FaultSpec spec;
    spec.every_nth = 2;
    spec.max_fires = 1;
    return spec;
  }());
  auto model = world.NewModel();
  dist::Options options;
  options.workers = 2;
  options.num_shards = 4;
  dist::DataParallelTrainer trainer(model.get(), options);
  util::StatusOr<topicmodel::TrainStats> stats =
      trainer.Train(world.dataset.train);
  util::FaultInjector::Global().Reset();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->interrupted);
  EXPECT_EQ(stats->status.code(), util::StatusCode::kDataLoss)
      << stats->status.ToString();
#endif
}

TEST(DistChaosTest, WorkerDeathBeforeAnyCheckpointIsNotRestartable) {
#ifdef CT_SKIP_FORK_TESTS
  GTEST_SKIP() << "fork-based legs are disabled under ThreadSanitizer";
#else
  util::FaultInjector::Global().Reset();
  const World world;
  const std::string ckpt =
      ::testing::TempDir() + "/dist_chaos_no_checkpoint.ckpt";
  std::remove(ckpt.c_str());
  // Rank 1 dies on the very first step: no checkpoint exists yet, so
  // auto-restart must surface the read failure instead of looping.
  util::FaultInjector::Global().Arm("dist.worker_kill.rank1", [] {
    util::FaultSpec spec;
    spec.every_nth = 1;
    spec.max_fires = 1;
    return spec;
  }());
  auto model = world.NewModel();
  dist::Options options = BaseOptions(world, ckpt);
  options.auto_restart = true;
  dist::DataParallelTrainer trainer(model.get(), options);
  util::StatusOr<topicmodel::TrainStats> stats =
      trainer.Train(world.dataset.train);
  util::FaultInjector::Global().Reset();
  EXPECT_FALSE(stats.ok());
  std::remove(ckpt.c_str());
#endif
}

}  // namespace
}  // namespace contratopic
