// Determinism lock-in for the parallel training & evaluation engine
// (ISSUE tentpole + satellite #1): num_threads=1 and num_threads=N must
// produce bitwise-identical results everywhere — kernels, backward pass,
// co-occurrence/NPMI construction, clustering, and full ContraTopic
// training including the loss trajectory.

#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/contratopic.h"
#include "embed/cooccurrence.h"
#include "embed/word_embeddings.h"
#include "eval/clustering.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "tensor/autodiff.h"
#include "tensor/backend.h"
#include "tensor/kernels.h"
#include "text/synthetic.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace {

using tensor::Tensor;
using util::ThreadPool;

Tensor RandomTensor(int64_t rows, int64_t cols, uint64_t seed) {
  util::Rng rng(seed);
  return Tensor::RandNormal(rows, cols, rng, 0.0f, 1.0f);
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.same_shape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  for (int64_t i = 0; i < a.numel(); ++i) {
    // EXPECT_EQ on float demands exact (bitwise for non-NaN) equality.
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

// Runs `fn` under a 1-thread and a 4-thread global pool and requires the
// results to match bitwise. Restores the hardware-default pool afterwards.
void ExpectThreadCountInvariant(const std::function<Tensor()>& fn) {
  ThreadPool::SetGlobalNumThreads(1);
  const Tensor serial = fn();
  ThreadPool::SetGlobalNumThreads(4);
  const Tensor parallel = fn();
  ThreadPool::SetGlobalNumThreads(0);
  ExpectBitwiseEqual(serial, parallel);
}

// ---------------------------------------------------------------------------
// Kernels: every parallelized kernel, 1 vs 4 threads, plus serial references.
// Sizes exceed the internal chunk grains (ColSum grid = 256 rows,
// elementwise grain = 2^14) so the 4-thread run really splits.
// ---------------------------------------------------------------------------

TEST(KernelDeterminismTest, MatMul) {
  const Tensor a = RandomTensor(300, 80, 1);
  const Tensor b = RandomTensor(80, 70, 2);
  ExpectThreadCountInvariant(
      [&] { return tensor::MatMulNew(a, false, b, false); });
  ExpectThreadCountInvariant(
      [&] { return tensor::MatMulNew(a, true, a, false); });
}

TEST(KernelDeterminismTest, SoftmaxFamily) {
  const Tensor x = RandomTensor(500, 40, 3);
  ExpectThreadCountInvariant([&] { return tensor::SoftmaxRows(x); });
  ExpectThreadCountInvariant([&] {
    Tensor y = x;
    tensor::LogSoftmaxRowsInPlace(&y);
    return y;
  });
  util::Rng rng(4);
  Tensor mask(500, 40);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.data()[i] = rng.Uniform() < 0.5 ? 1.0f : 0.0f;
  }
  ExpectThreadCountInvariant([&] {
    Tensor out(500, 1);
    tensor::LogSumExpRows(x, &mask, &out);
    return out;
  });
}

TEST(KernelDeterminismTest, RowAndColReductions) {
  // 1000 rows: the ColSum fixed grid (256 rows/chunk) produces 4 partials,
  // exercising the multi-chunk tree reduction.
  const Tensor x = RandomTensor(1000, 37, 5);
  ExpectThreadCountInvariant([&] { return tensor::RowSum(x); });
  ExpectThreadCountInvariant([&] { return tensor::ColSum(x); });
  ExpectThreadCountInvariant([&] { return tensor::ColMean(x); });

  // Serial reference: double-accumulated column sums agree to float rounding.
  const Tensor colsum = tensor::ColSum(x);
  for (int64_t c = 0; c < x.cols(); ++c) {
    double acc = 0.0;
    for (int64_t r = 0; r < x.rows(); ++r) acc += x.at(r, c);
    EXPECT_NEAR(colsum.at(0, c), acc, 1e-3 * (1.0 + std::fabs(acc)));
  }
}

TEST(KernelDeterminismTest, StructuredKernels) {
  const Tensor x = RandomTensor(400, 50, 6);
  const Tensor col = RandomTensor(400, 1, 7);
  const Tensor row = RandomTensor(1, 50, 8);
  ExpectThreadCountInvariant([&] { return tensor::Transposed(x); });
  ExpectThreadCountInvariant([&] { return tensor::RowL2Normalized(x); });
  ExpectThreadCountInvariant([&] {
    Tensor out(400, 50);
    tensor::BroadcastCol(x, col, tensor::BinaryOp::kMul, &out);
    return out;
  });
  ExpectThreadCountInvariant([&] {
    Tensor out(400, 50);
    tensor::BroadcastRow(x, row, tensor::BinaryOp::kAdd, &out);
    return out;
  });
  const Tensor b = RandomTensor(120, 50, 9);
  ExpectThreadCountInvariant(
      [&] { return tensor::PairwiseSquaredDistances(x, b); });
  ExpectThreadCountInvariant([&] { return tensor::PairwiseCosine(x, b); });
}

TEST(KernelDeterminismTest, TensorInPlaceHelpers) {
  // 2^16 elements: above the elementwise grain, so 4 threads really split.
  const Tensor base = RandomTensor(256, 256, 10);
  const Tensor other = RandomTensor(256, 256, 11);
  ExpectThreadCountInvariant([&] {
    Tensor t = base;
    t.Scale(0.37f);
    return t;
  });
  ExpectThreadCountInvariant([&] {
    Tensor t = base;
    t.AddInPlace(other);
    return t;
  });
  ExpectThreadCountInvariant([&] {
    Tensor t = base;
    t.AddScaledInPlace(other, -1.25f);
    return t;
  });
  ExpectThreadCountInvariant([&] {
    Tensor t = base;
    t.Apply([](float v) { return std::exp(-v * v); });
    return t;
  });
}

// ---------------------------------------------------------------------------
// Autodiff backward pass.
// ---------------------------------------------------------------------------

TEST(BackwardDeterminismTest, CompositeGraphGradientsMatchBitwise) {
  using autodiff::Var;
  // 1000 batch rows push the BroadcastRow bias-gradient reduction onto its
  // multi-chunk fixed grid.
  const Tensor x_val = RandomTensor(1000, 16, 20);
  const Tensor w_val = RandomTensor(16, 12, 21);
  const Tensor b_val = RandomTensor(1, 12, 22);
  const Tensor target = [&] {
    Tensor t = RandomTensor(1000, 12, 23);
    t.Apply([](float v) { return std::fabs(v); });
    return t;
  }();

  auto grads = [&] {
    Var x = Var::Leaf(x_val, true);
    Var w = Var::Leaf(w_val, true);
    Var b = Var::Leaf(b_val, true);
    Var h = autodiff::BroadcastRowAdd(autodiff::MatMul(x, w), b);
    Var y = autodiff::SoftmaxRows(autodiff::Tanh(h));
    Var loss = autodiff::Neg(autodiff::SumAll(
        autodiff::Mul(Var::Constant(target), autodiff::Log(y, 1e-6f))));
    autodiff::Backward(loss);
    return std::vector<Tensor>{x.grad(), w.grad(), b.grad(),
                               loss.value()};
  };

  ThreadPool::SetGlobalNumThreads(1);
  const std::vector<Tensor> serial = grads();
  ThreadPool::SetGlobalNumThreads(4);
  const std::vector<Tensor> parallel = grads();
  ThreadPool::SetGlobalNumThreads(0);
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectBitwiseEqual(serial[i], parallel[i]);
  }
}

// ---------------------------------------------------------------------------
// Co-occurrence counting and NPMI construction.
// ---------------------------------------------------------------------------

text::BowCorpus RandomCorpus(int num_docs, int vocab_size, uint64_t seed) {
  text::Vocabulary vocab;
  for (int i = 0; i < vocab_size; ++i) {
    vocab.AddWord("w" + std::to_string(i));
  }
  util::Rng rng(seed);
  std::vector<text::Document> docs(num_docs);
  for (auto& doc : docs) {
    const int unique = 5 + static_cast<int>(rng.UniformInt(8));
    for (int w : rng.SampleWithoutReplacement(vocab_size, unique)) {
      doc.entries.push_back({w, 1 + static_cast<int>(rng.UniformInt(4))});
    }
  }
  return text::BowCorpus(std::move(vocab), std::move(docs));
}

TEST(CooccurrenceDeterminismTest, ShardedCountsMatchSerialReferenceExactly) {
  // 2000 docs exceeds the 512-doc shard grain, so the 4-thread run shards.
  const text::BowCorpus corpus = RandomCorpus(2000, 60, 30);

  auto presence = [&] {
    embed::CooccurrenceCounts counts(corpus.vocab_size());
    counts.AddPresence(corpus);
    return counts.matrix();
  };
  auto weighted = [&] {
    embed::CooccurrenceCounts counts(corpus.vocab_size());
    counts.AddWeighted(corpus);
    return counts.matrix();
  };
  ExpectThreadCountInvariant(presence);
  ExpectThreadCountInvariant(weighted);

  // Serial reference: the counts are integer-valued, so the sharded result
  // must match a naive doc-by-doc accumulation *exactly*.
  const Tensor sharded = presence();
  Tensor naive(corpus.vocab_size(), corpus.vocab_size());
  for (const auto& doc : corpus.docs()) {
    const auto& e = doc.entries;
    for (size_t a = 0; a < e.size(); ++a) {
      naive.at(e[a].word_id, e[a].word_id) += 1.0f;
      for (size_t b = a + 1; b < e.size(); ++b) {
        naive.at(e[a].word_id, e[b].word_id) += 1.0f;
        naive.at(e[b].word_id, e[a].word_id) += 1.0f;
      }
    }
  }
  ExpectBitwiseEqual(sharded, naive);
}

TEST(CooccurrenceDeterminismTest, NpmiAndPpmiMatchAcrossThreadCounts) {
  const text::BowCorpus corpus = RandomCorpus(2000, 60, 31);
  ExpectThreadCountInvariant(
      [&] { return eval::NpmiMatrix::Compute(corpus).matrix(); });
  ExpectThreadCountInvariant([&] {
    embed::CooccurrenceCounts counts(corpus.vocab_size());
    counts.AddWeighted(corpus);
    return embed::PpmiMatrix(counts);
  });

  // The row-parallel NPMI fill recomputes mirror cells; symmetry must be
  // exact because the per-cell math is symmetric in (i, j).
  const Tensor npmi = eval::NpmiMatrix::Compute(corpus).matrix();
  for (int64_t i = 0; i < npmi.rows(); ++i) {
    for (int64_t j = i + 1; j < npmi.cols(); ++j) {
      ASSERT_EQ(npmi.at(i, j), npmi.at(j, i));
    }
  }
}

// ---------------------------------------------------------------------------
// Evaluation: KMeans clustering and per-topic coherence.
// ---------------------------------------------------------------------------

TEST(EvalDeterminismTest, KMeansMatchesAcrossThreadCounts) {
  const Tensor points = RandomTensor(600, 10, 40);
  auto run = [&] {
    util::Rng rng(7);  // Fresh rng per run: seeding draws stay serial.
    return eval::KMeans(points, 12, rng);
  };
  ThreadPool::SetGlobalNumThreads(1);
  const eval::KMeansResult serial = run();
  ThreadPool::SetGlobalNumThreads(4);
  const eval::KMeansResult parallel = run();
  ThreadPool::SetGlobalNumThreads(0);
  EXPECT_EQ(serial.assignments, parallel.assignments);
  EXPECT_EQ(serial.inertia, parallel.inertia);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  ExpectBitwiseEqual(serial.centroids, parallel.centroids);
}

TEST(EvalDeterminismTest, PerTopicCoherenceMatchesAcrossThreadCounts) {
  const text::BowCorpus corpus = RandomCorpus(1500, 60, 41);
  const eval::NpmiMatrix npmi = eval::NpmiMatrix::Compute(corpus);
  const Tensor beta = tensor::SoftmaxRows(RandomTensor(16, 60, 42));
  auto run = [&] { return eval::PerTopicCoherence(beta, npmi); };
  ThreadPool::SetGlobalNumThreads(1);
  const std::vector<double> serial = run();
  ThreadPool::SetGlobalNumThreads(4);
  const std::vector<double> parallel = run();
  ThreadPool::SetGlobalNumThreads(0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k], parallel[k]) << "topic " << k;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: ContraTopic training on the 20ng-sim preset.
// ---------------------------------------------------------------------------

struct TrainRun {
  Tensor beta;
  Tensor theta;
  std::vector<double> losses;  // Train + two TrainMore continuations.
  std::vector<double> coherence;
};

TrainRun TrainContraTopic(int threads) {
  ThreadPool::SetGlobalNumThreads(threads);
  // Everything is rebuilt from scratch per run: corpus generation,
  // embeddings, the NPMI kernel, and training all run under the requested
  // thread count.
  const text::SyntheticConfig config = text::Preset20NG(0.1);
  text::SyntheticDataset dataset = text::GenerateSynthetic(config);
  const text::BowCorpus reference =
      text::GenerateReferenceCorpus(config, dataset.train.vocab());
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(reference, [] {
        embed::EmbeddingConfig c;
        c.dimension = 16;
        return c;
      }());

  topicmodel::TrainConfig tc;
  tc.num_topics = 8;
  tc.epochs = 2;
  tc.batch_size = 128;
  tc.encoder_hidden = 32;
  tc.encoder_layers = 1;
  auto model = core::MakeContraTopicEtm(tc, embeddings);

  TrainRun run;
  run.losses.push_back(model->Train(dataset.train).final_loss);
  run.losses.push_back(model->TrainMore(dataset.train, 1).final_loss);
  run.losses.push_back(model->TrainMore(dataset.train, 1).final_loss);
  run.beta = model->Beta();
  run.theta = model->InferTheta(dataset.test);
  const eval::NpmiMatrix test_npmi = eval::NpmiMatrix::Compute(dataset.test);
  run.coherence = eval::PerTopicCoherence(run.beta, test_npmi);
  return run;
}

TEST(TrainingDeterminismTest, ContraTopicIsBitwiseIdenticalAt1And4Threads) {
  const TrainRun serial = TrainContraTopic(1);
  const TrainRun parallel = TrainContraTopic(4);
  ThreadPool::SetGlobalNumThreads(0);

  ASSERT_EQ(serial.losses.size(), parallel.losses.size());
  for (size_t i = 0; i < serial.losses.size(); ++i) {
    EXPECT_EQ(serial.losses[i], parallel.losses[i]) << "loss step " << i;
  }
  ExpectBitwiseEqual(serial.beta, parallel.beta);
  ExpectBitwiseEqual(serial.theta, parallel.theta);
  ASSERT_EQ(serial.coherence.size(), parallel.coherence.size());
  for (size_t k = 0; k < serial.coherence.size(); ++k) {
    EXPECT_EQ(serial.coherence[k], parallel.coherence[k]) << "topic " << k;
  }
}

// The backend axis (ISSUE 5): the bitwise contract of tensor/backend.h
// says the SIMD kernel backend is a pure speed knob. Train the full model
// under every (backend, thread count) combination of {scalar, best SIMD}
// x {1, 4} and require identical beta, theta, and loss trajectories to
// the bit. On non-x86 hosts best == scalar and this degenerates to the
// thread-count test above.
TEST(TrainingDeterminismTest, ContraTopicIsBitwiseIdenticalAcrossBackends) {
  TrainRun reference;
  {
    tensor::ScopedKernelBackend scoped(tensor::KernelBackendKind::kScalar);
    reference = TrainContraTopic(1);
  }
  const tensor::KernelBackendKind kinds[] = {
      tensor::KernelBackendKind::kScalar, tensor::BestSupportedBackend()};
  for (tensor::KernelBackendKind kind : kinds) {
    tensor::ScopedKernelBackend scoped(kind);
    for (int threads : {1, 4}) {
      if (kind == tensor::KernelBackendKind::kScalar && threads == 1) {
        continue;  // that is the reference run
      }
      SCOPED_TRACE(std::string(tensor::KernelBackendName(kind)) + " @ " +
                   std::to_string(threads) + " threads");
      const TrainRun run = TrainContraTopic(threads);
      ASSERT_EQ(reference.losses.size(), run.losses.size());
      for (size_t i = 0; i < reference.losses.size(); ++i) {
        EXPECT_EQ(reference.losses[i], run.losses[i]) << "loss step " << i;
      }
      ExpectBitwiseEqual(reference.beta, run.beta);
      ExpectBitwiseEqual(reference.theta, run.theta);
      ASSERT_EQ(reference.coherence.size(), run.coherence.size());
      for (size_t k = 0; k < reference.coherence.size(); ++k) {
        EXPECT_EQ(reference.coherence[k], run.coherence[k])
            << "topic " << k;
      }
    }
  }
  ThreadPool::SetGlobalNumThreads(0);
}

// Rng streams: (seed, stream) pairs are independent and reproducible.
TEST(RngStreamTest, StreamsAreReproducibleAndDistinct) {
  util::Rng a0 = util::Rng::Stream(123, 0);
  util::Rng a0_again = util::Rng::Stream(123, 0);
  util::Rng a1 = util::Rng::Stream(123, 1);
  util::Rng b0 = util::Rng::Stream(124, 0);
  const uint64_t x = a0.NextUint64();
  EXPECT_EQ(x, a0_again.NextUint64());
  EXPECT_NE(x, a1.NextUint64());
  EXPECT_NE(x, b0.NextUint64());
  // Stream 0 is not the plain single-seed generator.
  util::Rng plain(123);
  util::Rng s0 = util::Rng::Stream(123, 0);
  EXPECT_NE(plain.NextUint64(), s0.NextUint64());
}

}  // namespace
}  // namespace contratopic
