#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace contratopic {
namespace tensor {
namespace {

// Naive reference matmul for validating the blocked kernel.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.numel(), 6);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

TEST(TensorTest, Factories) {
  EXPECT_FLOAT_EQ(Tensor::Full(2, 2, 3.0f).at(1, 1), 3.0f);
  EXPECT_FLOAT_EQ(Tensor::Scalar(7.0f).scalar(), 7.0f);
  const Tensor eye = Tensor::Identity(3);
  EXPECT_FLOAT_EQ(eye.at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(eye.at(0, 1), 0.0f);
}

TEST(TensorTest, Reshape) {
  Tensor t(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped(3, 2);
  EXPECT_EQ(r.rows(), 3);
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, InPlaceOps) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.at(0, 2), 33.0f);
  a.AddScaledInPlace(b, -1.0f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 1.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 4.0f);
  a.Apply([](float v) { return v + 1.0f; });
  EXPECT_FLOAT_EQ(a.at(0, 0), 3.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t(2, 2, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.Sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.Mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.MaxAbs(), 4.0f);
  EXPECT_NEAR(t.L2Norm(), std::sqrt(30.0f), 1e-5);
}

TEST(TensorTest, TopKIndices) {
  Tensor t(1, 5, {0.1f, 0.5f, 0.3f, 0.9f, 0.2f});
  const auto top = t.TopKIndicesOfRow(0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 3);
  EXPECT_EQ(top[1], 1);
  EXPECT_EQ(top[2], 2);
}

TEST(TensorTest, TopKClampsToWidth) {
  Tensor t(1, 3, {3, 1, 2});
  EXPECT_EQ(t.TopKIndicesOfRow(0, 10).size(), 3u);
}

TEST(TensorTest, RandomFactoriesHaveRightMoments) {
  util::Rng rng(5);
  const Tensor n = Tensor::RandNormal(100, 100, rng, 2.0f, 0.5f);
  EXPECT_NEAR(n.Mean(), 2.0f, 0.02f);
  const Tensor u = Tensor::RandUniform(100, 100, rng, -1.0f, 1.0f);
  EXPECT_NEAR(u.Mean(), 0.0f, 0.02f);
}

TEST(TensorTest, AllClose) {
  Tensor a(1, 2, {1.0f, 2.0f});
  Tensor b(1, 2, {1.0f, 2.00000095f});
  EXPECT_TRUE(AllClose(a, b, 1e-5f));
  b.at(0, 1) = 2.1f;
  EXPECT_FALSE(AllClose(a, b, 1e-5f));
  EXPECT_FALSE(AllClose(a, Tensor(2, 1)));
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

TEST(KernelsTest, MatMulMatchesNaive) {
  util::Rng rng(9);
  const Tensor a = Tensor::RandNormal(17, 23, rng);
  const Tensor b = Tensor::RandNormal(23, 11, rng);
  EXPECT_TRUE(
      AllClose(MatMulNew(a, false, b, false), NaiveMatMul(a, b), 1e-3f));
}

TEST(KernelsTest, MatMulTransposeFlags) {
  util::Rng rng(10);
  const Tensor a = Tensor::RandNormal(6, 4, rng);
  const Tensor b = Tensor::RandNormal(5, 4, rng);
  // a (6x4) @ b^T (4x5).
  const Tensor expected = NaiveMatMul(a, Transposed(b));
  EXPECT_TRUE(AllClose(MatMulNew(a, false, b, true), expected, 1e-4f));
  // a^T (4x6) @ ... use a^T.
  const Tensor at = Transposed(a);
  EXPECT_TRUE(AllClose(MatMulNew(a, true, at, true),
                       NaiveMatMul(at, Transposed(at)), 1e-4f));
}

TEST(KernelsTest, MatMulAlphaBeta) {
  const Tensor a = Tensor::Ones(2, 2);
  const Tensor b = Tensor::Ones(2, 2);
  Tensor c = Tensor::Full(2, 2, 10.0f);
  MatMul(a, false, b, false, &c, /*alpha=*/0.5f, /*beta=*/1.0f);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);  // 10 + 0.5 * 2
}

TEST(KernelsTest, LargeMatMulUsesThreadsCorrectly) {
  util::Rng rng(12);
  // Big enough to cross the parallel threshold.
  const Tensor a = Tensor::RandNormal(128, 300, rng);
  const Tensor b = Tensor::RandNormal(300, 120, rng);
  EXPECT_TRUE(
      AllClose(MatMulNew(a, false, b, false), NaiveMatMul(a, b), 1e-2f));
}

TEST(KernelsTest, SoftmaxRowsSumToOne) {
  util::Rng rng(13);
  Tensor x = Tensor::RandNormal(5, 9, rng, 0.0f, 3.0f);
  const Tensor y = SoftmaxRows(x);
  for (int64_t r = 0; r < y.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < y.cols(); ++c) {
      EXPECT_GT(y.at(r, c), 0.0f);
      sum += y.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(KernelsTest, SoftmaxIsShiftInvariantAndStable) {
  Tensor x(1, 3, {1000.0f, 1001.0f, 999.0f});
  const Tensor y = SoftmaxRows(x);
  EXPECT_FALSE(std::isnan(y.at(0, 0)));
  EXPECT_GT(y.at(0, 1), y.at(0, 0));
  Tensor shifted(1, 3, {0.0f, 1.0f, -1.0f});
  EXPECT_TRUE(AllClose(y, SoftmaxRows(shifted), 1e-5f));
}

TEST(KernelsTest, LogSoftmaxMatchesLogOfSoftmax) {
  util::Rng rng(14);
  Tensor x = Tensor::RandNormal(4, 7, rng);
  Tensor ls = x;
  LogSoftmaxRowsInPlace(&ls);
  const Tensor s = SoftmaxRows(x);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-4);
  }
}

TEST(KernelsTest, LogSumExpRowsMasked) {
  Tensor x(1, 3, {0.0f, 1.0f, 2.0f});
  Tensor mask(1, 3, {1.0f, 0.0f, 1.0f});
  Tensor out(1, 1);
  LogSumExpRows(x, &mask, &out);
  EXPECT_NEAR(out.scalar(), std::log(std::exp(0.0) + std::exp(2.0)), 1e-5);
  // Empty mask row -> -inf surrogate.
  Tensor zero_mask(1, 3);
  LogSumExpRows(x, &zero_mask, &out);
  EXPECT_LT(out.scalar(), -1e29f);
}

TEST(KernelsTest, TransposedRoundTrip) {
  util::Rng rng(15);
  const Tensor x = Tensor::RandNormal(37, 53, rng);
  EXPECT_TRUE(AllClose(Transposed(Transposed(x)), x));
  const Tensor t = Transposed(x);
  EXPECT_FLOAT_EQ(t.at(5, 7), x.at(7, 5));
}

TEST(KernelsTest, RowColReductions) {
  Tensor x(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor rs = RowSum(x);
  EXPECT_FLOAT_EQ(rs.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(rs.at(1, 0), 15.0f);
  const Tensor cs = ColSum(x);
  EXPECT_FLOAT_EQ(cs.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(cs.at(0, 2), 9.0f);
  const Tensor cm = ColMean(x);
  EXPECT_FLOAT_EQ(cm.at(0, 1), 3.5f);
}

TEST(KernelsTest, BroadcastColAndRow) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor col(2, 1, {10, 100});
  Tensor out(2, 2);
  BroadcastCol(a, col, BinaryOp::kAdd, &out);
  EXPECT_FLOAT_EQ(out.at(0, 1), 12.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 103.0f);
  BroadcastCol(a, col, BinaryOp::kMul, &out);
  EXPECT_FLOAT_EQ(out.at(1, 1), 400.0f);

  Tensor row(1, 2, {2, 4});
  BroadcastRow(a, row, BinaryOp::kDiv, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 1.0f);
  BroadcastRow(a, row, BinaryOp::kSub, &out);
  EXPECT_FLOAT_EQ(out.at(0, 1), -2.0f);
}

TEST(KernelsTest, RowL2Normalized) {
  Tensor x(2, 2, {3, 4, 0, 0});
  const Tensor n = RowL2Normalized(x);
  EXPECT_NEAR(n.at(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(n.at(0, 1), 0.8f, 1e-6);
  // Zero row stays zero.
  EXPECT_FLOAT_EQ(n.at(1, 0), 0.0f);
}

TEST(KernelsTest, PairwiseSquaredDistances) {
  Tensor a(2, 2, {0, 0, 1, 1});
  Tensor b(1, 2, {3, 4});
  const Tensor d = PairwiseSquaredDistances(a, b);
  EXPECT_NEAR(d.at(0, 0), 25.0f, 1e-4);
  EXPECT_NEAR(d.at(1, 0), 13.0f, 1e-4);
}

TEST(KernelsTest, PairwiseCosineBounds) {
  util::Rng rng(16);
  const Tensor a = Tensor::RandNormal(10, 6, rng);
  const Tensor c = PairwiseCosine(a, a);
  for (int64_t i = 0; i < c.rows(); ++i) {
    EXPECT_NEAR(c.at(i, i), 1.0f, 1e-4);
    for (int64_t j = 0; j < c.cols(); ++j) {
      EXPECT_LE(std::fabs(c.at(i, j)), 1.0f + 1e-4f);
    }
  }
}

}  // namespace
}  // namespace tensor
}  // namespace contratopic
