// The deterministic fault injector (util/fault.h): schedules are pure
// functions of (seed, site, call index), so the same seed produces the
// same fault schedule run after run and at any thread count — the
// property every crash-recovery and chaos test in this repo rests on.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace util {
namespace {

// Every test arms the process-global injector, so every test must leave
// it clean: a leaked armed site would fire inside unrelated suites.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

std::vector<bool> CollectSchedule(const std::string& site, uint64_t seed,
                                  const FaultSpec& spec, int calls) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Reset();
  injector.SetSeed(seed);
  injector.Arm(site, spec);
  std::vector<bool> fired(calls);
  for (int i = 0; i < calls; ++i) fired[i] = injector.ShouldFail(site);
  return fired;
}

TEST_F(FaultInjectionTest, DisarmedSiteNeverFiresAndCostsNoRegistration) {
  FaultInjector& injector = FaultInjector::Global();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldFail("nothing.armed"));
  }
  // Fast path: with no site armed anywhere, the call did not register.
  EXPECT_TRUE(injector.RegisteredSites().empty());
}

TEST_F(FaultInjectionTest, EveryNthFiresOnSchedule) {
  FaultSpec spec;
  spec.every_nth = 3;
  const std::vector<bool> fired =
      CollectSchedule("test.nth", /*seed=*/0, spec, 12);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(fired[i], i % 3 == 2) << "call " << i;
  }
  EXPECT_EQ(FaultInjector::Global().calls("test.nth"), 12);
  EXPECT_EQ(FaultInjector::Global().fires("test.nth"), 4);
}

TEST_F(FaultInjectionTest, MaxFiresCapsTheSchedule) {
  FaultSpec spec;
  spec.every_nth = 1;
  spec.max_fires = 2;
  const std::vector<bool> fired =
      CollectSchedule("test.capped", /*seed=*/0, spec, 10);
  EXPECT_TRUE(fired[0]);
  EXPECT_TRUE(fired[1]);
  for (int i = 2; i < 10; ++i) EXPECT_FALSE(fired[i]) << "call " << i;
  EXPECT_EQ(FaultInjector::Global().fires("test.capped"), 2);
}

TEST_F(FaultInjectionTest, ProbabilityScheduleIsSeedDeterministic) {
  FaultSpec spec;
  spec.probability = 0.3;
  const std::vector<bool> first =
      CollectSchedule("test.prob", /*seed=*/42, spec, 512);
  const std::vector<bool> second =
      CollectSchedule("test.prob", /*seed=*/42, spec, 512);
  EXPECT_EQ(first, second);

  const std::vector<bool> other_seed =
      CollectSchedule("test.prob", /*seed=*/43, spec, 512);
  EXPECT_NE(first, other_seed);

  // ~30% of 512 calls; a deterministic schedule either holds this
  // forever or never did.
  int fires = 0;
  for (bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 100);
  EXPECT_LT(fires, 220);
}

TEST_F(FaultInjectionTest, DistinctSitesGetDistinctSchedules) {
  FaultSpec spec;
  spec.probability = 0.5;
  const std::vector<bool> a =
      CollectSchedule("test.site_a", /*seed=*/7, spec, 256);
  const std::vector<bool> b =
      CollectSchedule("test.site_b", /*seed=*/7, spec, 256);
  EXPECT_NE(a, b);
}

TEST_F(FaultInjectionTest, ScheduleIsThreadCountInvariant) {
  // The fire decision for call k is a hash of (seed, site, k), never of
  // which thread made the call, so the number of fires over N calls is
  // identical at any thread count.
  constexpr int kCalls = 500;
  int64_t fires[2] = {0, 0};
  const int thread_counts[2] = {1, 4};
  for (int leg = 0; leg < 2; ++leg) {
    ThreadPool& pool = ThreadPool::SetGlobalNumThreads(thread_counts[leg]);
    FaultInjector& injector = FaultInjector::Global();
    injector.Reset();
    injector.SetSeed(99);
    FaultSpec spec;
    spec.probability = 0.37;
    injector.Arm("test.threads", spec);
    pool.ParallelFor(
        0, kCalls,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            injector.ShouldFail("test.threads");
          }
        },
        /*grain=*/1);
    EXPECT_EQ(injector.calls("test.threads"), kCalls);
    fires[leg] = injector.fires("test.threads");
  }
  EXPECT_EQ(fires[0], fires[1]);
  EXPECT_GT(fires[0], 0);
}

TEST_F(FaultInjectionTest, ArmResetsCountersAndDisarmKeepsThem) {
  FaultInjector& injector = FaultInjector::Global();
  FaultSpec spec;
  spec.every_nth = 1;
  injector.Arm("test.rearm", spec);
  EXPECT_TRUE(injector.ShouldFail("test.rearm"));
  injector.Disarm("test.rearm");
  EXPECT_FALSE(injector.ShouldFail("test.rearm"));
  EXPECT_EQ(injector.fires("test.rearm"), 1);
  injector.Arm("test.rearm", spec);  // counters restart
  EXPECT_EQ(injector.calls("test.rearm"), 0);
  EXPECT_TRUE(injector.ShouldFail("test.rearm"));
}

TEST_F(FaultInjectionTest, FiresFeedTheGlobalFaultCounter) {
  const int64_t before =
      MetricsRegistry::Global().counter("fault.injected").value();
  FaultSpec spec;
  spec.every_nth = 2;
  CollectSchedule("test.metric", /*seed=*/0, spec, 10);
  const int64_t after =
      MetricsRegistry::Global().counter("fault.injected").value();
  EXPECT_EQ(after - before, 5);
}

TEST_F(FaultInjectionTest, ThreadPoolDelaySiteFires) {
  // The "threadpool.task_delay" site is wired into every worker's task
  // dispatch; arming it must stall (but not change) scheduled work.
  FaultInjector& injector = FaultInjector::Global();
  FaultSpec spec;
  spec.every_nth = 1;
  spec.max_fires = 4;
  injector.Arm("threadpool.task_delay", spec);
  ThreadPool& pool = ThreadPool::SetGlobalNumThreads(4);
  std::atomic<int> sum{0};
  for (int i = 0; i < 8; ++i) {
    pool.Schedule([&sum] { sum.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 8);  // delayed, never dropped
  EXPECT_GE(injector.fires("threadpool.task_delay"), 1);
  EXPECT_GE(injector.calls("threadpool.task_delay"), 8);
}

TEST_F(FaultInjectionTest, RegisteredSitesEnumeratesExercisedSites) {
  FaultInjector& injector = FaultInjector::Global();
  FaultSpec spec;
  spec.every_nth = 1;
  injector.Arm("test.registry", spec);
  injector.ShouldFail("test.registry");
  injector.ShouldFail("test.other");  // consulted while armed elsewhere
  const std::vector<std::string> sites = injector.RegisteredSites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.registry"),
            sites.end());
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.other"),
            sites.end());
}

}  // namespace
}  // namespace util
}  // namespace contratopic
