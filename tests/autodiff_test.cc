#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/contrastive_loss.h"
#include "core/subset_sampler.h"
#include "tensor/autodiff.h"
#include "tensor/grad_check.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace contratopic {
namespace autodiff {
namespace {

using tensor::CheckGradient;
using tensor::GradCheckResult;
using tensor::Tensor;

Tensor SmallRandom(int64_t rows, int64_t cols, uint64_t seed,
                   float stddev = 1.0f) {
  util::Rng rng(seed);
  return Tensor::RandNormal(rows, cols, rng, 0.0f, stddev);
}

TEST(BackwardTest, ChainsThroughSimpleGraph) {
  // loss = sum((2x)^2) => dloss/dx = 8x.
  Var x = Var::Leaf(Tensor(1, 3, {1.0f, -2.0f, 3.0f}), true);
  Var loss = SumAll(Square(MulScalar(x, 2.0f)));
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 8.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0, 1), -16.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0, 2), 24.0f);
}

TEST(BackwardTest, GradAccumulatesAcrossUses) {
  // loss = sum(x) + sum(x) => grad = 2 everywhere.
  Var x = Var::Leaf(Tensor::Ones(2, 2), true);
  Var loss = Add(SumAll(x), SumAll(x));
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad().at(1, 1), 2.0f);
}

TEST(BackwardTest, ConstantGetsNoGradient) {
  Var x = Var::Constant(Tensor::Ones(2, 2));
  Var loss = SumAll(Square(x));
  Backward(loss);  // Should be a no-op, not crash.
  EXPECT_TRUE(x.grad().empty());
}

TEST(BackwardTest, ZeroGradResets) {
  Var x = Var::Leaf(Tensor::Ones(1, 2), true);
  Backward(SumAll(x));
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 1.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.0f);
}

// ---------------------------------------------------------------------------
// Parameterized numerical gradient checks: every unary op.
// ---------------------------------------------------------------------------

struct UnaryCase {
  std::string name;
  std::function<Var(const Var&)> op;
  bool positive_input = false;  // restrict to positive domain (log, sqrt)
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesNumericalGradient) {
  const UnaryCase& test_case = GetParam();
  Tensor input = SmallRandom(3, 4, 101, 0.8f);
  if (test_case.positive_input) {
    input.Apply([](float v) { return std::fabs(v) + 0.2f; });
  }
  auto fn = [&](const Var& x) { return SumAll(test_case.op(x)); };
  const GradCheckResult result = CheckGradient(fn, input);
  EXPECT_TRUE(result.ok) << test_case.name
                         << " max_rel_error=" << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(
        UnaryCase{"exp", [](const Var& x) { return Exp(x); }},
        UnaryCase{"log", [](const Var& x) { return Log(x); }, true},
        UnaryCase{"square", [](const Var& x) { return Square(x); }},
        UnaryCase{"sqrt", [](const Var& x) { return Sqrt(x); }, true},
        UnaryCase{"rsqrt", [](const Var& x) { return Rsqrt(x); }, true},
        UnaryCase{"selu", [](const Var& x) { return Selu(x); }},
        UnaryCase{"softplus", [](const Var& x) { return Softplus(x); }},
        UnaryCase{"tanh", [](const Var& x) { return Tanh(x); }},
        UnaryCase{"sigmoid", [](const Var& x) { return Sigmoid(x); }},
        UnaryCase{"neg", [](const Var& x) { return Neg(x); }},
        UnaryCase{"addscalar", [](const Var& x) { return AddScalar(x, 3.0f); }},
        UnaryCase{"mulscalar",
                  [](const Var& x) { return MulScalar(x, -2.0f); }},
        UnaryCase{"softmax",
                  [](const Var& x) { return Square(SoftmaxRows(x)); }},
        UnaryCase{"logsoftmax",
                  [](const Var& x) { return Square(LogSoftmaxRows(x)); }},
        UnaryCase{"rowsum", [](const Var& x) { return Square(RowSum(x)); }},
        UnaryCase{"colsum", [](const Var& x) { return Square(ColSum(x)); }},
        UnaryCase{"colmean", [](const Var& x) { return Square(ColMean(x)); }},
        UnaryCase{"transpose",
                  [](const Var& x) { return Square(Transpose(x)); }},
        UnaryCase{"rowl2norm",
                  [](const Var& x) { return Square(RowL2Normalize(x)); }},
        UnaryCase{"logsumexp",
                  [](const Var& x) { return Square(LogSumExpRows(x)); }}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Binary / structured op gradient checks.
// ---------------------------------------------------------------------------

TEST(BinaryGradTest, AddSubMulDiv) {
  const Tensor other = [] {
    Tensor t = SmallRandom(3, 4, 200);
    t.Apply([](float v) { return std::fabs(v) + 0.5f; });  // Safe divisor.
    return t;
  }();
  for (auto [name, fn] :
       std::vector<std::pair<std::string, std::function<Var(const Var&)>>>{
           {"add",
            [&](const Var& x) {
              return SumAll(Square(Add(x, Var::Constant(other))));
            }},
           {"sub",
            [&](const Var& x) {
              return SumAll(Square(Sub(x, Var::Constant(other))));
            }},
           {"mul",
            [&](const Var& x) {
              return SumAll(Square(Mul(x, Var::Constant(other))));
            }},
           {"div",
            [&](const Var& x) {
              return SumAll(Square(Div(x, Var::Constant(other))));
            }},
           {"div_rhs", [&](const Var& x) {
              return SumAll(Square(
                  Div(Var::Constant(other), AddScalar(Square(x), 1.0f))));
            }}}) {
    const GradCheckResult result = CheckGradient(fn, SmallRandom(3, 4, 201));
    EXPECT_TRUE(result.ok) << name << " rel=" << result.max_rel_error;
  }
}

TEST(MatMulGradTest, AllTransposeCombos) {
  const Tensor b_val = SmallRandom(4, 5, 300);
  struct Combo {
    bool ta, tb;
    int64_t rows, cols;
  };
  for (const Combo combo : std::vector<Combo>{{false, false, 3, 4},
                                              {false, true, 3, 5},
                                              {true, false, 4, 3},
                                              {true, true, 5, 3}}) {
    // Shapes: (ta? x^T : x) must be (m x 4or5) compatible with op(B).
    auto fn = [&](const Var& x) {
      return SumAll(
          Square(MatMul(x, Var::Constant(b_val), combo.ta, combo.tb)));
    };
    const GradCheckResult result =
        CheckGradient(fn, SmallRandom(combo.rows, combo.cols, 301));
    EXPECT_TRUE(result.ok) << "ta=" << combo.ta << " tb=" << combo.tb
                           << " rel=" << result.max_rel_error;
  }
  // Gradient w.r.t. the second operand.
  const Tensor a_val = SmallRandom(3, 4, 302);
  auto fn_b = [&](const Var& x) {
    return SumAll(Square(MatMul(Var::Constant(a_val), x, false, true)));
  };
  EXPECT_TRUE(CheckGradient(fn_b, SmallRandom(6, 4, 303)).ok);
}

TEST(BroadcastGradTest, ColumnOps) {
  const Tensor col_val = [] {
    Tensor t = SmallRandom(3, 1, 400);
    t.Apply([](float v) { return std::fabs(v) + 0.5f; });
    return t;
  }();
  // Gradient w.r.t. the matrix.
  for (auto fn : {
           std::function<Var(const Var&)>([&](const Var& x) {
             return SumAll(Square(BroadcastColAdd(x, Var::Constant(col_val))));
           }),
           std::function<Var(const Var&)>([&](const Var& x) {
             return SumAll(Square(BroadcastColMul(x, Var::Constant(col_val))));
           }),
           std::function<Var(const Var&)>([&](const Var& x) {
             return SumAll(Square(BroadcastColDiv(x, Var::Constant(col_val))));
           }),
       }) {
    EXPECT_TRUE(CheckGradient(fn, SmallRandom(3, 4, 401)).ok);
  }
  // Gradient w.r.t. the column.
  const Tensor mat_val = SmallRandom(3, 4, 402);
  auto fn_col = [&](const Var& c) {
    return SumAll(Square(BroadcastColMul(Var::Constant(mat_val), c)));
  };
  EXPECT_TRUE(CheckGradient(fn_col, col_val).ok);
  auto fn_col_div = [&](const Var& c) {
    return SumAll(Square(BroadcastColDiv(Var::Constant(mat_val),
                                         AddScalar(Square(c), 1.0f))));
  };
  EXPECT_TRUE(CheckGradient(fn_col_div, SmallRandom(3, 1, 403)).ok);
}

TEST(BroadcastGradTest, RowOps) {
  const Tensor row_val = [] {
    Tensor t = SmallRandom(1, 4, 410);
    t.Apply([](float v) { return std::fabs(v) + 0.5f; });
    return t;
  }();
  auto fn_mat = [&](const Var& x) {
    return SumAll(Square(BroadcastRowSub(x, Var::Constant(row_val))));
  };
  EXPECT_TRUE(CheckGradient(fn_mat, SmallRandom(3, 4, 411)).ok);
  const Tensor mat_val = SmallRandom(3, 4, 412);
  auto fn_row = [&](const Var& r) {
    return SumAll(Square(BroadcastRowMul(Var::Constant(mat_val), r)));
  };
  EXPECT_TRUE(CheckGradient(fn_row, row_val).ok);
}

TEST(StructuredGradTest, MaskedLogSumExp) {
  util::Rng rng(500);
  Tensor mask(3, 5);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.data()[i] = rng.Uniform() < 0.6 ? 1.0f : 0.0f;
  }
  mask.at(0, 0) = 1.0f;  // Ensure no empty row.
  mask.at(1, 1) = 1.0f;
  mask.at(2, 2) = 1.0f;
  auto fn = [&](const Var& x) {
    return SumAll(Square(MaskedLogSumExpRows(x, mask)));
  };
  EXPECT_TRUE(CheckGradient(fn, SmallRandom(3, 5, 501)).ok);
}

TEST(StructuredGradTest, ConcatRows) {
  const Tensor b_val = SmallRandom(2, 4, 510);
  auto fn = [&](const Var& x) {
    return SumAll(Square(ConcatRows({x, Var::Constant(b_val), x})));
  };
  EXPECT_TRUE(CheckGradient(fn, SmallRandom(3, 4, 511)).ok);
}

TEST(StructuredGradTest, SelectColumnsWithDuplicates) {
  const std::vector<int> indices = {3, 0, 3, 1};
  auto fn = [&](const Var& x) {
    return SumAll(Square(SelectColumns(x, indices)));
  };
  EXPECT_TRUE(CheckGradient(fn, SmallRandom(2, 5, 520)).ok);
}

TEST(StructuredGradTest, GatherRowsWithDuplicates) {
  // Duplicate indices make the backward scatter-add accumulate: row 2's
  // gradient receives contributions from output rows 0 and 2.
  const std::vector<int> indices = {2, 0, 2, 4, 1};
  auto fn = [&](const Var& x) {
    return SumAll(Square(GatherRows(x, indices)));
  };
  EXPECT_TRUE(CheckGradient(fn, SmallRandom(5, 3, 525)).ok);
}

TEST(StructuredGradTest, GatherRowsForward) {
  const Tensor x = SmallRandom(4, 3, 526);
  Var out = GatherRows(Var::Constant(x), {3, 3, 0});
  ASSERT_EQ(out.value().rows(), 3);
  ASSERT_EQ(out.value().cols(), 3);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(out.value().at(0, c), x.at(3, c));
    EXPECT_EQ(out.value().at(1, c), x.at(3, c));
    EXPECT_EQ(out.value().at(2, c), x.at(0, c));
  }
}

TEST(StructuredGradTest, ApplyMask) {
  util::Rng rng(530);
  Tensor mask(3, 4);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.data()[i] = rng.Uniform() < 0.5 ? 2.0f : 0.0f;
  }
  auto fn = [&](const Var& x) { return SumAll(Square(ApplyMask(x, mask))); };
  EXPECT_TRUE(CheckGradient(fn, SmallRandom(3, 4, 531)).ok);
}

TEST(StructuredGradTest, ReluSubgradientAwayFromKink) {
  // Keep inputs away from 0 where ReLU is non-differentiable.
  Tensor input = SmallRandom(3, 4, 540);
  input.Apply([](float v) { return v >= 0 ? v + 0.5f : v - 0.5f; });
  auto fn = [&](const Var& x) { return SumAll(Square(Relu(x))); };
  EXPECT_TRUE(CheckGradient(fn, input).ok);
}

TEST(CompositeGradTest, VaeStyleGraph) {
  // mu + exp(0.5 logvar) * eps -> softmax -> log-lik style loss: the exact
  // composition every VAE model in the repo trains through.
  const Tensor eps = SmallRandom(4, 3, 600);
  const Tensor x = [] {
    Tensor t = SmallRandom(4, 6, 601);
    t.Apply([](float v) { return std::fabs(v); });
    return t;
  }();
  const Tensor beta_const = [] {
    Tensor t = SmallRandom(3, 6, 602);
    return tensor::SoftmaxRows(t);
  }();
  auto fn = [&](const Var& mu) {
    Var theta = SoftmaxRows(Add(mu, Mul(Exp(MulScalar(mu, 0.5f)),
                                        Var::Constant(eps))));
    Var probs = MatMul(theta, Var::Constant(beta_const));
    return Neg(SumAll(Mul(Var::Constant(x), Log(probs, 1e-6f))));
  };
  const GradCheckResult result =
      CheckGradient(fn, SmallRandom(4, 3, 603), 1e-3f, 8e-2f);
  EXPECT_TRUE(result.ok) << result.max_rel_error;
}

// ---------------------------------------------------------------------------
// Full contrastive path: Gumbel subset relaxation (subset_sampler.cc)
// composed with the topic-wise contrastive loss (contrastive_loss.cc) — the
// exact gradient chain ContraTopic trains through (paper Eqs. 2-5).
// ---------------------------------------------------------------------------

// Symmetric kernel with NPMI-like range, fixed across FD evaluations.
Tensor SyntheticKernel(int c, uint64_t seed) {
  Tensor k = SmallRandom(c, c, seed);
  Tensor kt = tensor::Transposed(k);
  k.AddInPlace(kt);
  k.Apply([](float v) { return std::tanh(v); });
  for (int i = 0; i < c; ++i) k.at(i, i) = 1.0f;
  return k;
}

// Builds the closure used by the contrastive-path checks: softmax the raw
// topic-word scores, take logs, draw the relaxed subset with a *freshly
// seeded* rng (so every finite-difference evaluation sees identical Gumbel
// noise), and feed the relaxed one-hots to the loss. Soft relaxation only:
// the straight-through estimator is intentionally biased (discontinuous
// forward), so finite differences cannot validate it.
std::function<Var(const Var&)> ContrastivePathFn(const Tensor& kernel, int v,
                                                 core::ContrastVariant cv) {
  return [&kernel, v, cv](const Var& x) {
    util::Rng rng(42);
    Var beta = SoftmaxRows(x);
    core::SubsetSample sample = core::SampleTopVWithoutReplacement(
        Log(beta, 1e-20f), v, /*tau=*/1.0f, rng, /*hard=*/false);
    return core::TopicContrastiveLoss(sample.steps, kernel, cv,
                                      /*temperature=*/0.5f);
  };
}

TEST(ContrastivePathGradTest, FullVariant) {
  const Tensor kernel = SyntheticKernel(8, 700);
  const GradCheckResult result =
      CheckGradient(ContrastivePathFn(kernel, 2, core::ContrastVariant::kFull),
                    SmallRandom(4, 8, 701), 1e-3f, 8e-2f);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(ContrastivePathGradTest, PositiveOnlyVariant) {
  const Tensor kernel = SyntheticKernel(8, 710);
  const GradCheckResult result = CheckGradient(
      ContrastivePathFn(kernel, 2, core::ContrastVariant::kPositiveOnly),
      SmallRandom(4, 8, 711), 1e-3f, 8e-2f);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(ContrastivePathGradTest, NegativeOnlyVariant) {
  const Tensor kernel = SyntheticKernel(8, 720);
  const GradCheckResult result = CheckGradient(
      ContrastivePathFn(kernel, 2, core::ContrastVariant::kNegativeOnly),
      SmallRandom(4, 8, 721), 1e-3f, 8e-2f);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(ContrastivePathGradTest, DeeperSubsetDraw) {
  // v=3 chains three relaxed arg-max steps; gradients flow through the
  // log(1 - p) updates of every step.
  const Tensor kernel = SyntheticKernel(10, 730);
  const GradCheckResult result =
      CheckGradient(ContrastivePathFn(kernel, 3, core::ContrastVariant::kFull),
                    SmallRandom(3, 10, 731), 1e-3f, 1e-1f);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(ContrastivePathGradTest, ExpectationVariant) {
  // ContraTopic-S: the sampler is bypassed, beta rows feed the loss directly.
  const Tensor kernel = SyntheticKernel(8, 740);
  auto fn = [&kernel](const Var& x) {
    return core::ExpectationContrastiveLoss(SoftmaxRows(x), kernel,
                                            /*temperature=*/0.5f);
  };
  const GradCheckResult result =
      CheckGradient(fn, SmallRandom(4, 8, 741), 1e-3f, 8e-2f);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

// ---------------------------------------------------------------------------
// Model-zoo contrastive paths (CLNTM / TSCTM): the exact op compositions
// the new models train through, finite-difference checked end to end.
// ---------------------------------------------------------------------------

TEST(ContrastivePathGradTest, SoftplusLogSumExpDenominator) {
  // CLNTM's InfoNCE denominator: lse + softplus(s_neg - lse) - s_pos, with
  // the anchor/positive/negative representations all L2-normalized rows of
  // functions of x. Gradient flows through every branch (sim matrix, the
  // per-row positive, and the hard-negative column).
  const Tensor w_pos = SmallRandom(4, 4, 750);
  const Tensor w_neg = SmallRandom(4, 4, 751);
  auto fn = [&](const Var& x) {
    Var h = RowL2Normalize(x);
    Var h_pos = RowL2Normalize(MatMul(x, Var::Constant(w_pos)));
    Var h_neg = RowL2Normalize(MatMul(x, Var::Constant(w_neg)));
    const float inv_tau = 2.0f;
    Var sim = MulScalar(MatMul(h, h_pos, false, true), inv_tau);
    Var s_pos = MulScalar(RowSum(Mul(h, h_pos)), inv_tau);
    Var s_neg = MulScalar(RowSum(Mul(h, h_neg)), inv_tau);
    Var lse = LogSumExpRows(sim);
    Var denom = Add(lse, Softplus(Sub(s_neg, lse)));
    return MeanAll(Sub(denom, s_pos));
  };
  const GradCheckResult result =
      CheckGradient(fn, SmallRandom(3, 4, 752), 1e-3f, 8e-2f);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(ContrastivePathGradTest, IndexMaskedSimilarityContrast) {
  // TSCTM's quantization-masked doc-doc contrast: z = normalize(x T),
  // same-index pairs averaged as positives, different-index pairs through
  // the masked log-sum-exp denominator. Masks are constants, matching the
  // detached quantization assignment in TsctmModel::BuildBatch.
  const Tensor topics = SmallRandom(4, 3, 760);
  const int64_t b = 4;
  const std::vector<int> quant = {0, 1, 0, 1};
  Tensor pos_mask(b, b);
  Tensor neg_mask(b, b);
  Tensor inv_pos(b, 1);
  for (int64_t i = 0; i < b; ++i) {
    int pos_count = 0;
    for (int64_t j = 0; j < b; ++j) {
      if (quant[i] == quant[j]) {
        if (i != j) {
          pos_mask.at(i, j) = 1.0f;
          ++pos_count;
        }
      } else {
        neg_mask.at(i, j) = 1.0f;
      }
    }
    inv_pos.at(i, 0) = 1.0f / static_cast<float>(pos_count);
  }
  auto fn = [&](const Var& x) {
    Var z = RowL2Normalize(MatMul(x, Var::Constant(topics)));
    Var logits = MulScalar(MatMul(z, z, false, true), 2.0f);
    Var mean_pos =
        Mul(RowSum(ApplyMask(logits, pos_mask)), Var::Constant(inv_pos));
    Var denom = MaskedLogSumExpRows(logits, neg_mask);
    return MeanAll(Sub(denom, mean_pos));
  };
  const GradCheckResult result =
      CheckGradient(fn, SmallRandom(4, 4, 761), 1e-3f, 8e-2f);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(ContrastivePathGradTest, QuantizationAnchorCrossEntropy) {
  // TSCTM's anchor term: the positive logit rides GatherRows over the
  // normalized anchors (the gradient must scatter-add back into the shared
  // anchor matrix, including duplicate assignments).
  const Tensor doc = SmallRandom(3, 4, 770);
  const std::vector<int> quant = {1, 1, 0};  // duplicate anchor use
  auto fn = [&](const Var& t) {
    Var anchors = RowL2Normalize(t);
    Var z = RowL2Normalize(Var::Constant(doc));
    Var logits = MulScalar(MatMul(z, anchors, false, true), 2.0f);
    Var own = MulScalar(RowSum(Mul(z, GatherRows(anchors, quant))), 2.0f);
    return MeanAll(Sub(LogSumExpRows(logits), own));
  };
  const GradCheckResult result =
      CheckGradient(fn, SmallRandom(2, 4, 771), 1e-3f, 8e-2f);
  EXPECT_TRUE(result.ok) << "max_rel_error=" << result.max_rel_error;
}

TEST(ContrastivePathGradTest, ReconSubstitutedViewEncoderPath) {
  // CLNTM's view construction is detached (the views enter as constants),
  // so the gradient must flow only through the encoder weights -- checked
  // here as dx of an InfoNCE scalar whose views are fixed tensors.
  const Tensor positive = SmallRandom(3, 4, 780);
  const Tensor negative = SmallRandom(3, 4, 781);
  const Tensor w = SmallRandom(4, 4, 782);
  auto fn = [&](const Var& x) {
    Var h = RowL2Normalize(MatMul(x, Var::Constant(w)));
    Var h_pos =
        RowL2Normalize(MatMul(Var::Constant(positive), Var::Constant(w)));
    Var h_neg =
        RowL2Normalize(MatMul(Var::Constant(negative), Var::Constant(w)));
    Var s_pos = RowSum(Mul(h, h_pos));
    Var s_neg = RowSum(Mul(h, h_neg));
    return MeanAll(Softplus(Sub(s_neg, s_pos)));
  };
  EXPECT_TRUE(CheckGradient(fn, SmallRandom(3, 4, 783)).ok);
}

}  // namespace
}  // namespace autodiff
}  // namespace contratopic
