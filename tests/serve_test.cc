// Serving-path correctness: a checkpointed model reloaded by the
// InferenceEngine must reproduce the training process's InferTheta
// bitwise -- at any thread count, batched or one-at-a-time, cached or
// not -- and degrade gracefully (Status, never a crash) under overload.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "serve/batcher.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"
#include "serve/resilience.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "text/corpus.h"
#include "text/synthetic.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace serve {
namespace {

using tensor::Tensor;
using topicmodel::TrainConfig;

TrainConfig TinyConfig() {
  TrainConfig config;
  config.num_topics = 8;
  config.epochs = 3;
  config.batch_size = 128;
  config.encoder_hidden = 32;
  config.encoder_layers = 1;
  return config;
}

// Tiny dataset plus one trained ETM and its reference inference output,
// built once for the whole file.
struct ServeFixture {
  text::SyntheticDataset dataset;
  embed::WordEmbeddings embeddings;
  std::unique_ptr<topicmodel::TopicModel> etm;
  Tensor etm_theta;  // reference: in-memory InferTheta over the test set
  std::string etm_checkpoint;

  ServeFixture()
      : dataset(text::GenerateSynthetic(text::Preset20NG(0.15))),
        embeddings(embed::WordEmbeddings::Train(dataset.train, [] {
          embed::EmbeddingConfig c;
          c.dimension = 24;
          return c;
        }())) {
    etm = core::CreateModel("etm", TinyConfig(), embeddings);
    etm->Train(dataset.train);
    etm_theta = etm->InferTheta(dataset.test);
    // gtest_discover_tests runs every TEST in its own process; the pid
    // suffix keeps parallel ctest workers from clobbering each other's
    // fixture checkpoint mid-read.
    etm_checkpoint = ::testing::TempDir() + "/serve_fixture_etm_" +
                     std::to_string(::getpid()) + ".ckpt";
    CHECK(SaveCheckpoint(*etm, dataset.train.vocab(), etm_checkpoint).ok());
  }
};

ServeFixture& Shared() {
  static ServeFixture* fixture = new ServeFixture();
  return *fixture;
}

InferenceEngine::BowDoc ToBowDoc(const text::Document& doc) {
  InferenceEngine::BowDoc bow;
  bow.reserve(doc.entries.size());
  for (const auto& e : doc.entries) bow.emplace_back(e.word_id, e.count);
  return bow;
}

bool BitwiseEqual(const std::vector<float>& served, const Tensor& reference,
                  int64_t row) {
  return served.size() == static_cast<size_t>(reference.cols()) &&
         std::memcmp(served.data(), reference.row(row),
                     served.size() * sizeof(float)) == 0;
}

TEST(ServeTest, LoadedEngineReproducesInferThetaBitwise) {
  ServeFixture& shared = Shared();
  auto engine = InferenceEngine::Load(shared.etm_checkpoint);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine)->descriptor().type, "etm");
  EXPECT_EQ((*engine)->num_topics(), 8);
  EXPECT_EQ((*engine)->vocab_size(), shared.dataset.train.vocab().size());

  const int n = std::min(40, shared.dataset.test.num_docs());
  for (int i = 0; i < n; ++i) {
    const text::Document& doc = shared.dataset.test.doc(i);
    if (doc.entries.empty()) continue;
    InferenceEngine::ThetaResult theta =
        (*engine)->InferTheta(ToBowDoc(doc));
    ASSERT_TRUE(theta.ok()) << theta.status();
    EXPECT_TRUE(BitwiseEqual(*theta, shared.etm_theta, i)) << "doc " << i;
  }
}

TEST(ServeTest, ServingIsThreadCountInvariant) {
  ServeFixture& shared = Shared();
  const int n = std::min(24, shared.dataset.test.num_docs());
  std::vector<std::vector<float>> results[2];
  const int thread_counts[2] = {1, 4};
  for (int leg = 0; leg < 2; ++leg) {
    util::ThreadPool::SetGlobalNumThreads(thread_counts[leg]);
    auto engine = InferenceEngine::Load(shared.etm_checkpoint);
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (int i = 0; i < n; ++i) {
      const text::Document& doc = shared.dataset.test.doc(i);
      if (doc.entries.empty()) continue;
      InferenceEngine::ThetaResult theta =
          (*engine)->InferTheta(ToBowDoc(doc));
      ASSERT_TRUE(theta.ok()) << theta.status();
      results[leg].push_back(std::move(theta).value());
    }
  }
  util::ThreadPool::SetGlobalNumThreads(0);
  ASSERT_EQ(results[0].size(), results[1].size());
  for (size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_EQ(std::memcmp(results[0][i].data(), results[1][i].data(),
                          results[0][i].size() * sizeof(float)),
              0)
        << "doc " << i << " differs between 1 and 4 threads";
  }
}

TEST(ServeTest, BatchedMatchesOneAtATimeBitwise) {
  ServeFixture& shared = Shared();
  InferenceEngine::Options unbatched;
  unbatched.max_batch_size = 1;
  unbatched.cache_capacity = 0;
  InferenceEngine::Options batched;
  batched.max_batch_size = 16;
  batched.cache_capacity = 0;
  auto one = InferenceEngine::Load(shared.etm_checkpoint, unbatched);
  auto many = InferenceEngine::Load(shared.etm_checkpoint, batched);
  ASSERT_TRUE(one.ok() && many.ok());

  const int n = std::min(48, shared.dataset.test.num_docs());
  // Burst-submit against the batched engine so real multi-request
  // batches form, then compare with serial one-at-a-time serving.
  std::vector<std::future<InferenceEngine::ThetaResult>> futures;
  for (int i = 0; i < n; ++i) {
    const text::Document& doc = shared.dataset.test.doc(i);
    auto promise =
        std::make_shared<std::promise<InferenceEngine::ThetaResult>>();
    futures.push_back(promise->get_future());
    (*many)->InferThetaAsync(ToBowDoc(doc),
                             [promise](InferenceEngine::ThetaResult r) {
                               promise->set_value(std::move(r));
                             });
  }
  for (int i = 0; i < n; ++i) {
    const text::Document& doc = shared.dataset.test.doc(i);
    if (doc.entries.empty()) continue;
    InferenceEngine::ThetaResult serial = (*one)->InferTheta(ToBowDoc(doc));
    InferenceEngine::ThetaResult burst = futures[i].get();
    ASSERT_TRUE(serial.ok()) << serial.status();
    ASSERT_TRUE(burst.ok()) << burst.status();
    EXPECT_EQ(std::memcmp(serial->data(), burst->data(),
                          serial->size() * sizeof(float)),
              0)
        << "doc " << i;
    EXPECT_TRUE(BitwiseEqual(*burst, shared.etm_theta, i)) << "doc " << i;
  }
}

TEST(ServeTest, CacheHitsSkipTheModelAndMatchBitwise) {
  ServeFixture& shared = Shared();
  auto engine = InferenceEngine::Load(shared.etm_checkpoint);
  ASSERT_TRUE(engine.ok());
  const text::Document& doc = shared.dataset.test.doc(0);
  ASSERT_GE(doc.entries.size(), 2u);

  InferenceEngine::ThetaResult first = (*engine)->InferTheta(ToBowDoc(doc));
  ASSERT_TRUE(first.ok());
  const int64_t batches_after_miss = (*engine)->stats().batches;

  // Same document again: served from cache, no new model call.
  InferenceEngine::ThetaResult second = (*engine)->InferTheta(ToBowDoc(doc));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);

  // A permuted and duplicate-split request canonicalizes to the same
  // document, so it must hit the same cache entry.
  InferenceEngine::BowDoc scrambled = ToBowDoc(doc);
  std::reverse(scrambled.begin(), scrambled.end());
  for (auto& [word, count] : scrambled) {
    if (count >= 2) {  // split (w, c) into (w, c-1) + (w, 1)
      --count;
      scrambled.emplace_back(word, 1);
      break;
    }
  }
  InferenceEngine::ThetaResult third = (*engine)->InferTheta(scrambled);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*first, *third);

  const InferenceEngine::Stats stats = (*engine)->stats();
  EXPECT_GE(stats.cache_hits, 2);
  EXPECT_EQ((*engine)->stats().batches, batches_after_miss);
}

TEST(ServeTest, FullQueueShedsWithUnavailable) {
  ServeFixture& shared = Shared();
  InferenceEngine::Options options;
  options.max_queue_depth = 4;
  options.cache_capacity = 0;
  auto engine = InferenceEngine::Load(shared.etm_checkpoint, options);
  ASSERT_TRUE(engine.ok());

  // Pause dispatch so the queue fills deterministically.
  (*engine)->batcher().Pause();
  std::vector<std::future<InferenceEngine::ThetaResult>> futures;
  const int n = std::min(6, shared.dataset.test.num_docs());
  ASSERT_EQ(n, 6) << "fixture test set too small for the shed test";
  for (int i = 0; i < n; ++i) {
    auto promise =
        std::make_shared<std::promise<InferenceEngine::ThetaResult>>();
    futures.push_back(promise->get_future());
    (*engine)->InferThetaAsync(ToBowDoc(shared.dataset.test.doc(i)),
                               [promise](InferenceEngine::ThetaResult r) {
                                 promise->set_value(std::move(r));
                               });
  }
  // Requests 5 and 6 found the 4-deep queue full: shed immediately.
  for (int i = 4; i < 6; ++i) {
    InferenceEngine::ThetaResult shed = futures[i].get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), util::StatusCode::kUnavailable);
  }
  (*engine)->batcher().Resume();
  for (int i = 0; i < 4; ++i) {
    InferenceEngine::ThetaResult accepted = futures[i].get();
    ASSERT_TRUE(accepted.ok()) << accepted.status();
    EXPECT_TRUE(BitwiseEqual(*accepted, shared.etm_theta, i));
  }
  const InferenceEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.shed, 2);
  EXPECT_EQ(stats.max_queue_depth_seen, 4);
}

TEST(ServeTest, TopicTopWordsMatchTheModelsBeta) {
  ServeFixture& shared = Shared();
  auto engine = InferenceEngine::Load(shared.etm_checkpoint);
  ASSERT_TRUE(engine.ok());
  const Tensor beta = shared.etm->Beta();
  const text::Vocabulary& vocab = shared.dataset.train.vocab();
  for (int k = 0; k < (*engine)->num_topics(); ++k) {
    auto words = (*engine)->TopicTopWords(k, 10);
    ASSERT_TRUE(words.ok()) << words.status();
    // The serving contract is a prefix of the checkpoint's precomputed
    // top-25 list (ties within the top 25 keep that list's order).
    std::vector<int> expected = beta.TopKIndicesOfRow(k, kCheckpointTopWords);
    expected.resize(10);
    ASSERT_EQ(words->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*words)[i], vocab.Word(expected[i]))
          << "topic " << k << " word " << i;
    }
  }
  EXPECT_FALSE((*engine)->TopicTopWords(-1, 10).ok());
  EXPECT_FALSE((*engine)->TopicTopWords(99, 10).ok());
  EXPECT_FALSE((*engine)->TopicTopWords(0, 0).ok());
}

TEST(ServeTest, TopTopicsAreSortedAndConsistentWithTheta) {
  ServeFixture& shared = Shared();
  auto engine = InferenceEngine::Load(shared.etm_checkpoint);
  ASSERT_TRUE(engine.ok());
  const InferenceEngine::BowDoc doc = ToBowDoc(shared.dataset.test.doc(1));
  InferenceEngine::ThetaResult theta = (*engine)->InferTheta(doc);
  ASSERT_TRUE(theta.ok());
  auto top = (*engine)->TopTopics(doc, 3);
  ASSERT_TRUE(top.ok()) << top.status();
  ASSERT_EQ(top->size(), 3u);
  for (size_t i = 0; i + 1 < top->size(); ++i) {
    EXPECT_GE((*top)[i].second, (*top)[i + 1].second);
  }
  for (const auto& [topic, weight] : *top) {
    EXPECT_FLOAT_EQ(weight, (*theta)[topic]);
  }
}

TEST(ServeTest, InvalidRequestsAreInvalidArgument) {
  ServeFixture& shared = Shared();
  auto engine = InferenceEngine::Load(shared.etm_checkpoint);
  ASSERT_TRUE(engine.ok());
  const int v = (*engine)->vocab_size();

  const InferenceEngine::BowDoc empty;
  const InferenceEngine::BowDoc oov = {{v, 3}};
  const InferenceEngine::BowDoc negative_id = {{-1, 3}};
  const InferenceEngine::BowDoc zero_count = {{0, 0}};
  for (const auto& doc : {empty, oov, negative_id, zero_count}) {
    InferenceEngine::ThetaResult theta = (*engine)->InferTheta(doc);
    ASSERT_FALSE(theta.ok());
    EXPECT_EQ(theta.status().code(), util::StatusCode::kInvalidArgument);
  }
  EXPECT_EQ((*engine)->stats().invalid, 4);
}

TEST(ServeTest, FileAndInMemoryCheckpointsServeIdentically) {
  ServeFixture& shared = Shared();
  auto from_file = InferenceEngine::Load(shared.etm_checkpoint);
  ASSERT_TRUE(from_file.ok());
  util::StatusOr<Checkpoint> built =
      BuildCheckpoint(*shared.etm, shared.dataset.train.vocab());
  ASSERT_TRUE(built.ok()) << built.status();
  auto in_memory = InferenceEngine::FromCheckpoint(std::move(built).value());
  ASSERT_TRUE(in_memory.ok()) << in_memory.status();

  for (int i = 0; i < std::min(8, shared.dataset.test.num_docs()); ++i) {
    const text::Document& doc = shared.dataset.test.doc(i);
    if (doc.entries.empty()) continue;
    InferenceEngine::ThetaResult a = (*from_file)->InferTheta(ToBowDoc(doc));
    InferenceEngine::ThetaResult b = (*in_memory)->InferTheta(ToBowDoc(doc));
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << "doc " << i;
  }
}

TEST(ServeTest, ContraTopicCheckpointServesBitwise) {
  ServeFixture& shared = Shared();
  TrainConfig config = TinyConfig();
  config.epochs = 2;
  auto model = core::CreateModel("contratopic", config, shared.embeddings);
  model->Train(shared.dataset.train);
  const Tensor reference = model->InferTheta(shared.dataset.test);

  const std::string path = ::testing::TempDir() + "/serve_contratopic.ckpt";
  ASSERT_TRUE(SaveCheckpoint(*model, shared.dataset.train.vocab(), path).ok());
  auto engine = InferenceEngine::Load(path);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine)->descriptor().type, "contratopic");

  for (int i = 0; i < std::min(16, shared.dataset.test.num_docs()); ++i) {
    const text::Document& doc = shared.dataset.test.doc(i);
    if (doc.entries.empty()) continue;
    InferenceEngine::ThetaResult theta = (*engine)->InferTheta(ToBowDoc(doc));
    ASSERT_TRUE(theta.ok()) << theta.status();
    EXPECT_TRUE(BitwiseEqual(*theta, reference, i)) << "doc " << i;
  }
}

TEST(ServeTest, QuantizedCheckpointServesFileAndMemoryIdentically) {
  // A v3 (quantized) checkpoint must serve exactly like its in-memory
  // parse: the file round trip adds no additional error beyond the
  // storage quantization itself.
  ServeFixture& shared = Shared();
  for (tensor::ServePrecision storage :
       {tensor::ServePrecision::kBf16, tensor::ServePrecision::kInt8}) {
    const std::string path = ::testing::TempDir() + "/serve_quant_" +
                             tensor::ServePrecisionName(storage) + ".ckpt";
    ASSERT_TRUE(SaveQuantizedCheckpoint(*shared.etm,
                                        shared.dataset.train.vocab(), path,
                                        storage)
                    .ok());
    InferenceEngine::Options options;
    options.precision = storage;  // serve at the storage precision too
    auto from_file = InferenceEngine::Load(path, options);
    ASSERT_TRUE(from_file.ok()) << from_file.status();
    util::StatusOr<Checkpoint> parsed = ReadCheckpoint(path);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->storage_precision, storage);
    auto in_memory =
        InferenceEngine::FromCheckpoint(std::move(parsed).value(), options);
    ASSERT_TRUE(in_memory.ok()) << in_memory.status();
    for (int i = 0; i < std::min(8, shared.dataset.test.num_docs()); ++i) {
      const text::Document& doc = shared.dataset.test.doc(i);
      if (doc.entries.empty()) continue;
      InferenceEngine::ThetaResult a =
          (*from_file)->InferTheta(ToBowDoc(doc));
      InferenceEngine::ThetaResult b =
          (*in_memory)->InferTheta(ToBowDoc(doc));
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b) << "doc " << i << " at "
                        << tensor::ServePrecisionName(storage);
    }
  }
}

// ---------------------------------------------------------------------------
// Resilience primitives (serve/resilience.h)
// ---------------------------------------------------------------------------

TEST(ResilienceTest, BackoffScheduleIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_backoff_ms = 2.0;
  policy.max_backoff_ms = 16.0;
  policy.backoff_multiplier = 2.0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double wait = policy.BackoffMs(attempt);
    // Same (seed, attempt) -> same wait, every time.
    EXPECT_EQ(wait, policy.BackoffMs(attempt)) << "attempt " << attempt;
    // Exponential base capped at max, jitter in [0, 50%).
    const double base = std::min(policy.max_backoff_ms,
                                 2.0 * std::pow(2.0, attempt - 1));
    EXPECT_GE(wait, base) << "attempt " << attempt;
    EXPECT_LT(wait, base * 1.5) << "attempt " << attempt;
  }
  RetryPolicy reseeded = policy;
  reseeded.jitter_seed = 1;
  bool any_differs = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    any_differs |= reseeded.BackoffMs(attempt) != policy.BackoffMs(attempt);
  }
  EXPECT_TRUE(any_differs) << "jitter_seed had no effect";
}

TEST(ResilienceTest, BackoffStaysFiniteForHugeAttemptCounts) {
  // multiplier^(attempt-1) overflows double around attempt ~1075 for
  // multiplier 2; the schedule must stay finite, capped, and
  // deterministic anyway -- a long outage must not produce inf/NaN waits.
  RetryPolicy policy;
  policy.base_backoff_ms = 2.0;
  policy.max_backoff_ms = 16.0;
  policy.backoff_multiplier = 2.0;
  for (int attempt : {100, 1100, 100000, std::numeric_limits<int>::max()}) {
    const double wait = policy.BackoffMs(attempt);
    EXPECT_TRUE(std::isfinite(wait)) << "attempt " << attempt;
    EXPECT_GE(wait, policy.max_backoff_ms) << "attempt " << attempt;
    EXPECT_LT(wait, policy.max_backoff_ms * 1.5) << "attempt " << attempt;
    EXPECT_EQ(wait, policy.BackoffMs(attempt)) << "attempt " << attempt;
  }

  // Zero base means "no backoff configured": never NaN, never max.
  RetryPolicy zero_base = policy;
  zero_base.base_backoff_ms = 0.0;
  for (int attempt : {1, 4, 5000}) {
    const double wait = zero_base.BackoffMs(attempt);
    EXPECT_EQ(wait, 0.0) << "attempt " << attempt;
  }

  // Degenerate multipliers stay within [0, max * 1.5) too.
  for (double multiplier : {0.0, 0.5, 1.0, 1e300}) {
    RetryPolicy weird = policy;
    weird.backoff_multiplier = multiplier;
    for (int attempt : {1, 2, 64, 4096}) {
      const double wait = weird.BackoffMs(attempt);
      EXPECT_TRUE(std::isfinite(wait))
          << "multiplier " << multiplier << " attempt " << attempt;
      EXPECT_GE(wait, 0.0);
      EXPECT_LT(wait, policy.max_backoff_ms * 1.5);
    }
  }
}

TEST(ResilienceTest, CircuitBreakerStateMachine) {
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.probe_interval = 3;
  options.success_threshold = 2;
  CircuitBreaker breaker(options);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());

  // A success between failures resets the consecutive count.
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Open: denied until the probe_interval-th call probes.
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest());  // the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.denied(), 2);

  // Half-open: success_threshold successes close it again.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  // A half-open failure slams it shut again.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

// Direct coverage of the half-open probe window. Two latent-bug shapes
// are pinned down here: a stale success count surviving into the next
// probe window (the breaker would close one success early), and a failed
// probe not restarting the open-state call counter (the next probe would
// arrive too soon).
TEST(ResilienceTest, CircuitBreakerHalfOpenProbeWindows) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.probe_interval = 3;
  options.success_threshold = 2;
  CircuitBreaker breaker(options);

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // First probe window: the probe is admitted, records one of the two
  // required successes, then the recovery attempt fails.
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest());  // the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // The failed probe restarts the window: a full probe_interval of calls
  // must pass before the next probe is admitted.
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // The success from the previous window must not carry over: one success
  // here leaves the breaker half-open; only the second closes it.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.denied(), 4);
}

// Outcome reports for requests that were already in flight when the
// breaker opened must be inert: they may not close the breaker or shift
// the probe schedule.
TEST(ResilienceTest, CircuitBreakerIgnoresStragglerOutcomesWhileOpen) {
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.probe_interval = 2;
  options.success_threshold = 1;
  CircuitBreaker breaker(options);

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  breaker.RecordSuccess();  // straggler from before the breaker opened
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // The probe schedule is unchanged: deny one, then probe.
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// MicroBatcher resilience: deadlines, shutdown, retries
// ---------------------------------------------------------------------------

// A model-free batch function: request {{w, c}} echoes row {w}.
MicroBatcher::BatchResult EchoBatch(
    const std::vector<MicroBatcher::Request>& requests) {
  std::vector<std::vector<float>> rows;
  rows.reserve(requests.size());
  for (const auto& r : requests) {
    rows.push_back({static_cast<float>(r[0].first)});
  }
  return rows;
}

TEST(BatcherTest, ShutdownWithoutDrainCancelsQueuedRequests) {
  MicroBatcher batcher(EchoBatch, MicroBatcher::Options());
  batcher.Pause();
  std::vector<std::future<MicroBatcher::Result>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(batcher.Submit({{i, 1}}));
  }
  batcher.Shutdown(/*drain_pending=*/false);
  for (auto& f : futures) {
    MicroBatcher::Result r = f.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kCancelled);
  }
  // Submissions after shutdown are refused with kCancelled too.
  MicroBatcher::Result late = batcher.Submit({{9, 1}}).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(batcher.stats().cancelled, 4);
}

TEST(BatcherTest, ShutdownWithDrainCompletesQueuedRequests) {
  MicroBatcher batcher(EchoBatch, MicroBatcher::Options());
  batcher.Pause();
  std::vector<std::future<MicroBatcher::Result>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(batcher.Submit({{i, 1}}));
  }
  batcher.Shutdown(/*drain_pending=*/true);
  for (int i = 0; i < 3; ++i) {
    MicroBatcher::Result r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ((*r)[0], static_cast<float>(i));
  }
  EXPECT_EQ(batcher.stats().cancelled, 0);
}

TEST(BatcherTest, ExpiredDeadlineFailsWithDeadlineExceeded) {
  MicroBatcher batcher(EchoBatch, MicroBatcher::Options());
  batcher.Pause();  // guarantee both requests wait in the queue
  // deadline_ms = 0: already expired by the time dispatch reaches it.
  std::future<MicroBatcher::Result> expired =
      batcher.Submit({{3, 1}}, /*deadline_ms=*/0.0);
  std::future<MicroBatcher::Result> generous =
      batcher.Submit({{4, 1}}, /*deadline_ms=*/60000.0);
  batcher.Resume();

  MicroBatcher::Result late = expired.get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kDeadlineExceeded);

  MicroBatcher::Result fine = generous.get();
  ASSERT_TRUE(fine.ok()) << fine.status();
  EXPECT_EQ((*fine)[0], 4.0f);
  EXPECT_EQ(batcher.stats().deadline_expired, 1);
}

TEST(BatcherTest, TransientBatchFailuresAreRetriedOnSchedule) {
  std::atomic<int> attempts{0};
  MicroBatcher::Options options;
  options.retry.max_attempts = 3;
  options.retry.base_backoff_ms = 0.01;
  options.retry.max_backoff_ms = 0.1;
  MicroBatcher batcher(
      [&attempts](const std::vector<MicroBatcher::Request>& requests)
          -> MicroBatcher::BatchResult {
        if (attempts.fetch_add(1) < 2) {
          return util::Status::Unavailable("transient model failure");
        }
        return EchoBatch(requests);
      },
      options);
  MicroBatcher::Result r = batcher.Submit({{7, 1}}).get();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)[0], 7.0f);
  EXPECT_EQ(attempts.load(), 3);
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.failed_batches, 0);
}

TEST(BatcherTest, ExhaustedRetriesFailTheRequests) {
  MicroBatcher::Options options;
  options.retry.max_attempts = 2;
  options.retry.base_backoff_ms = 0.01;
  options.retry.max_backoff_ms = 0.1;
  util::Status last_status = util::Status::OK();
  options.on_batch_done = [&last_status](const util::Status& s) {
    last_status = s;
  };
  MicroBatcher batcher(
      [](const std::vector<MicroBatcher::Request>&)
          -> MicroBatcher::BatchResult {
        return util::Status::Unavailable("model is down");
      },
      options);
  MicroBatcher::Result r = batcher.Submit({{1, 1}}).get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kUnavailable);
  batcher.Drain();
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.failed_batches, 1);
  EXPECT_EQ(last_status.code(), util::StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Engine resilience: injected batch faults, retries, circuit breaker
// ---------------------------------------------------------------------------

// Arms nothing itself; just guarantees no fault schedule leaks across
// tests (the injector is process-global).
struct FaultGuard {
  FaultGuard() { util::FaultInjector::Global().Reset(); }
  ~FaultGuard() { util::FaultInjector::Global().Reset(); }
};

TEST(ServeTest, EngineRetriesInjectedBatchFaults) {
  FaultGuard guard;
  ServeFixture& shared = Shared();
  InferenceEngine::Options options;
  options.cache_capacity = 0;
  options.retry.max_attempts = 3;
  options.retry.base_backoff_ms = 0.01;
  options.retry.max_backoff_ms = 0.1;
  auto engine = InferenceEngine::Load(shared.etm_checkpoint, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  util::FaultSpec spec;
  spec.every_nth = 1;
  spec.max_fires = 2;  // first two attempts fail, the third succeeds
  util::FaultInjector::Global().Arm("serve.batch", spec);

  InferenceEngine::ThetaResult theta =
      (*engine)->InferTheta(ToBowDoc(shared.dataset.test.doc(0)));
  ASSERT_TRUE(theta.ok()) << theta.status();
  EXPECT_TRUE(BitwiseEqual(*theta, shared.etm_theta, 0));
  EXPECT_EQ((*engine)->stats().retries, 2);
  EXPECT_EQ((*engine)->health(), InferenceEngine::HealthState::kHealthy);
}

TEST(ServeTest, EngineDegradesWhenBreakerOpensAndRecoversViaProbe) {
  FaultGuard guard;
  ServeFixture& shared = Shared();
  InferenceEngine::Options options;
  options.breaker.failure_threshold = 2;
  options.breaker.probe_interval = 2;
  options.breaker.success_threshold = 1;
  auto engine = InferenceEngine::Load(shared.etm_checkpoint, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  // Warm the cache while healthy.
  ASSERT_TRUE((*engine)->InferTheta(ToBowDoc(shared.dataset.test.doc(0))).ok());

  // Two failed batches (no retries configured) trip the breaker.
  util::FaultSpec spec;
  spec.every_nth = 1;
  spec.max_fires = 2;
  util::FaultInjector::Global().Arm("serve.batch", spec);
  for (int i = 1; i <= 2; ++i) {
    InferenceEngine::ThetaResult failed =
        (*engine)->InferTheta(ToBowDoc(shared.dataset.test.doc(i)));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), util::StatusCode::kUnavailable);
  }
  EXPECT_EQ((*engine)->health(), InferenceEngine::HealthState::kDegraded);

  // Degraded mode: cache hits and the frozen top-word lists still serve.
  InferenceEngine::ThetaResult cached =
      (*engine)->InferTheta(ToBowDoc(shared.dataset.test.doc(0)));
  ASSERT_TRUE(cached.ok()) << cached.status();
  EXPECT_TRUE(BitwiseEqual(*cached, shared.etm_theta, 0));
  EXPECT_TRUE((*engine)->TopicTopWords(0, 5).ok());

  // ...but a miss fast-fails without touching the model.
  const int64_t batches_before = (*engine)->stats().batches;
  InferenceEngine::ThetaResult denied =
      (*engine)->InferTheta(ToBowDoc(shared.dataset.test.doc(3)));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), util::StatusCode::kUnavailable);
  EXPECT_EQ((*engine)->stats().batches, batches_before);
  EXPECT_EQ((*engine)->stats().degraded, 1);

  // The next miss is the probe (probe_interval = 2); the fault schedule
  // is exhausted, so it succeeds and closes the breaker.
  InferenceEngine::ThetaResult probe =
      (*engine)->InferTheta(ToBowDoc(shared.dataset.test.doc(4)));
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_TRUE(BitwiseEqual(*probe, shared.etm_theta, 4));
  EXPECT_EQ((*engine)->health(), InferenceEngine::HealthState::kHealthy);
}

TEST(ServeTest, DegradedTopicTopWordsIsPrecisionInvariant) {
  // While the breaker is open, TopicTopWords answers from the
  // checkpoint's frozen fp32-derived id lists -- so a degraded engine
  // gives the identical ranked words at every serving precision.
  ServeFixture& shared = Shared();
  std::vector<std::vector<std::string>> want;  // healthy fp32 answers
  {
    auto engine = InferenceEngine::Load(shared.etm_checkpoint);
    ASSERT_TRUE(engine.ok()) << engine.status();
    for (int t = 0; t < (*engine)->num_topics(); ++t) {
      auto words = (*engine)->TopicTopWords(t, 10);
      ASSERT_TRUE(words.ok()) << words.status();
      want.push_back(std::move(words).value());
    }
  }
  for (tensor::ServePrecision p :
       {tensor::ServePrecision::kFp32, tensor::ServePrecision::kBf16,
        tensor::ServePrecision::kInt8}) {
    FaultGuard guard;
    InferenceEngine::Options options;
    options.precision = p;
    options.cache_capacity = 0;
    options.breaker.failure_threshold = 2;
    auto engine = InferenceEngine::Load(shared.etm_checkpoint, options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    util::FaultSpec spec;
    spec.every_nth = 1;
    spec.max_fires = 2;
    util::FaultInjector::Global().Arm("serve.batch", spec);
    for (int i = 0; i < 2; ++i) {
      ASSERT_FALSE(
          (*engine)->InferTheta(ToBowDoc(shared.dataset.test.doc(i))).ok());
    }
    ASSERT_EQ((*engine)->health(), InferenceEngine::HealthState::kDegraded)
        << tensor::ServePrecisionName(p);
    for (int t = 0; t < (*engine)->num_topics(); ++t) {
      auto words = (*engine)->TopicTopWords(t, 10);
      ASSERT_TRUE(words.ok()) << words.status();
      EXPECT_EQ(want[static_cast<size_t>(t)], *words)
          << "topic " << t << " at " << tensor::ServePrecisionName(p);
    }
  }
}

TEST(ServeTest, HealthAccessorTracksBreakerStates) {
  ServeFixture& shared = Shared();
  auto engine = InferenceEngine::Load(shared.etm_checkpoint);
  ASSERT_TRUE(engine.ok());
  CircuitBreaker& breaker = (*engine)->breaker();
  EXPECT_EQ((*engine)->health(), InferenceEngine::HealthState::kHealthy);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();  // default threshold
  EXPECT_EQ((*engine)->health(), InferenceEngine::HealthState::kDegraded);
  for (int i = 0; i < 8; ++i) breaker.AllowRequest();  // default probe cycle
  EXPECT_EQ((*engine)->health(), InferenceEngine::HealthState::kRecovering);
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  EXPECT_EQ((*engine)->health(), InferenceEngine::HealthState::kHealthy);
}

}  // namespace
}  // namespace serve
}  // namespace contratopic
