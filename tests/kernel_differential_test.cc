// Differential harness for the SIMD kernel backends (tensor/backend.h):
// every supported backend, at 1 and 4 threads, must reproduce the scalar
// reference backend *bitwise* on randomized shapes, transpose variants,
// and special-value-laced inputs. Around 200 randomized configurations run
// per full suite; each config is (op, shape draw, backend, thread count).
//
// Comparisons go through the uint32 bit pattern. The one carve-out is NaN
// payload/sign: when two *different* NaNs meet in an add or mul, x86
// propagates whichever operand sits in the destination register, and the
// compiler picks that freely for scalar C++ while intrinsics pin it. So
// the contract (backend.h) is "any NaN matches any NaN"; every non-NaN
// bit pattern must match exactly, including NaN *placement*.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/backend.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace tensor {
namespace {

uint32_t BitsOf(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void ExpectBitwise(const Tensor& want, const Tensor& got,
                   const std::string& what) {
  ASSERT_TRUE(want.same_shape(got))
      << what << ": " << want.ShapeString() << " vs " << got.ShapeString();
  for (int64_t i = 0; i < want.numel(); ++i) {
    if (std::isnan(want.data()[i]) && std::isnan(got.data()[i])) continue;
    ASSERT_EQ(BitsOf(want.data()[i]), BitsOf(got.data()[i]))
        << what << " differs at flat index " << i << ": "
        << want.data()[i] << " vs " << got.data()[i];
  }
}

// Random tensor; with probability `special_prob` per element, draws from
// the IEEE edge cases instead (infinities, NaN, denormal, signed zero).
Tensor RandomTensor(util::Rng& rng, int64_t rows, int64_t cols,
                    double special_prob = 0.0) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    float v;
    if (special_prob > 0.0 && rng.Uniform() < special_prob) {
      switch (rng.UniformInt(5)) {
        case 0:
          v = std::numeric_limits<float>::infinity();
          break;
        case 1:
          v = -std::numeric_limits<float>::infinity();
          break;
        case 2:
          v = std::numeric_limits<float>::quiet_NaN();
          break;
        case 3:
          v = std::numeric_limits<float>::denorm_min() *
              static_cast<float>(1 + rng.UniformInt(100));
          break;
        default:
          v = -0.0f;
          break;
      }
    } else {
      v = static_cast<float>(rng.Normal(0.0, 3.0));
    }
    t.data()[i] = v;
  }
  return t;
}

// Runs `fn` under the scalar backend at 1 thread (the canonical bits),
// then under every supported backend at 1 and 4 threads, and requires all
// runs to agree bitwise. `fn` must be a pure function of its captures.
void ExpectBackendInvariant(const std::function<Tensor()>& fn,
                            const std::string& what) {
  util::ThreadPool::SetGlobalNumThreads(1);
  Tensor want;
  {
    ScopedKernelBackend scalar(KernelBackendKind::kScalar);
    want = fn();
  }
  for (KernelBackendKind kind : SupportedBackends()) {
    ScopedKernelBackend scoped(kind);
    for (int threads : {1, 4}) {
      util::ThreadPool::SetGlobalNumThreads(threads);
      const Tensor got = fn();
      ExpectBitwise(want, got,
                    what + " [" + KernelBackendName(kind) + ", " +
                        std::to_string(threads) + " threads]");
      if (::testing::Test::HasFatalFailure()) {
        util::ThreadPool::SetGlobalNumThreads(0);
        return;
      }
    }
  }
  util::ThreadPool::SetGlobalNumThreads(0);
}

int64_t RandDim(util::Rng& rng, int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(rng.UniformInt(
                  static_cast<uint64_t>(hi - lo + 1)));
}

// ---------------------------------------------------------------------------
// MatMul: all four transpose variants, randomized shapes, alpha/beta
// accumulation. 4 variants x 12 draws x (1 + |backends| x 2) runs.
// ---------------------------------------------------------------------------

TEST(KernelDifferentialTest, MatMulAllTransposeVariants) {
  util::Rng rng(101);
  for (int iter = 0; iter < 12; ++iter) {
    const int64_t m = RandDim(rng, 1, 90);
    const int64_t k = RandDim(rng, 1, 70);
    const int64_t n = RandDim(rng, 1, 90);
    const Tensor a = RandomTensor(rng, m, k);
    const Tensor at = Transposed(a);
    const Tensor b = RandomTensor(rng, k, n);
    const Tensor bt = Transposed(b);
    const Tensor c0 = RandomTensor(rng, m, n);
    const float alpha = iter % 3 == 0 ? 1.0f : -0.75f;
    const float beta = iter % 2 == 0 ? 0.0f : 0.5f;
    struct Variant {
      const Tensor* a;
      bool trans_a;
      const Tensor* b;
      bool trans_b;
      const char* tag;
    };
    const Variant variants[] = {
        {&a, false, &b, false, "NN"},
        {&a, false, &bt, true, "NT"},
        {&at, true, &b, false, "TN"},
        {&at, true, &bt, true, "TT"},
    };
    for (const Variant& v : variants) {
      ExpectBackendInvariant(
          [&] {
            Tensor c = c0;
            MatMul(*v.a, v.trans_a, *v.b, v.trans_b, &c, alpha, beta);
            return c;
          },
          "MatMul/" + std::string(v.tag) + " iter " + std::to_string(iter));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(KernelDifferentialTest, MatMulLargeEnoughToGoParallel) {
  // 160*160*180 > 2^22 flops: exercises the threaded row-split path.
  util::Rng rng(102);
  const Tensor a = RandomTensor(rng, 160, 180);
  const Tensor b = RandomTensor(rng, 180, 160);
  ExpectBackendInvariant([&] { return MatMulNew(a, false, b, false); },
                         "MatMul/parallel");
}

// ---------------------------------------------------------------------------
// Softmax family: randomized shapes, with and without special values.
// ---------------------------------------------------------------------------

TEST(KernelDifferentialTest, SoftmaxRows) {
  util::Rng rng(201);
  for (int iter = 0; iter < 10; ++iter) {
    const Tensor x = RandomTensor(rng, RandDim(rng, 1, 120),
                                  RandDim(rng, 1, 300),
                                  iter % 2 == 0 ? 0.0 : 0.02);
    ExpectBackendInvariant([&] { return SoftmaxRows(x); },
                           "SoftmaxRows iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(KernelDifferentialTest, LogSoftmaxRows) {
  util::Rng rng(202);
  for (int iter = 0; iter < 10; ++iter) {
    const Tensor x = RandomTensor(rng, RandDim(rng, 1, 120),
                                  RandDim(rng, 1, 300),
                                  iter % 2 == 0 ? 0.0 : 0.02);
    ExpectBackendInvariant(
        [&] {
          Tensor y = x;
          LogSoftmaxRowsInPlace(&y);
          return y;
        },
        "LogSoftmaxRows iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(KernelDifferentialTest, LogSumExpRows) {
  util::Rng rng(203);
  for (int iter = 0; iter < 10; ++iter) {
    const int64_t rows = RandDim(rng, 1, 100);
    const int64_t cols = RandDim(rng, 1, 250);
    const Tensor x = RandomTensor(rng, rows, cols);
    // Random 0/1 mask; some rows end up all-zero (sentinel path).
    Tensor mask(rows, cols);
    for (int64_t i = 0; i < mask.numel(); ++i) {
      mask.data()[i] = rng.Uniform() < 0.6 ? 1.0f : 0.0f;
    }
    ExpectBackendInvariant(
        [&] {
          Tensor out(rows, 1);
          LogSumExpRows(x, nullptr, &out);
          return out;
        },
        "LogSumExpRows/nomask iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
    ExpectBackendInvariant(
        [&] {
          Tensor out(rows, 1);
          LogSumExpRows(x, &mask, &out);
          return out;
        },
        "LogSumExpRows/mask iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Reductions and row/col ops.
// ---------------------------------------------------------------------------

TEST(KernelDifferentialTest, RowAndColReductions) {
  util::Rng rng(301);
  for (int iter = 0; iter < 8; ++iter) {
    const Tensor x = RandomTensor(rng, RandDim(rng, 1, 700),
                                  RandDim(rng, 1, 90));
    ExpectBackendInvariant([&] { return RowSum(x); },
                           "RowSum iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
    ExpectBackendInvariant([&] { return ColSum(x); },
                           "ColSum iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
    ExpectBackendInvariant([&] { return ColMean(x); },
                           "ColMean iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
    ExpectBackendInvariant([&] { return RowL2Normalized(x); },
                           "RowL2Normalized iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(KernelDifferentialTest, BroadcastOps) {
  util::Rng rng(302);
  const BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                           BinaryOp::kDiv};
  for (int iter = 0; iter < 6; ++iter) {
    const int64_t rows = RandDim(rng, 1, 200);
    const int64_t cols = RandDim(rng, 1, 150);
    const Tensor a = RandomTensor(rng, rows, cols, 0.01);
    const Tensor col = RandomTensor(rng, rows, 1, 0.01);
    const Tensor row = RandomTensor(rng, 1, cols, 0.01);
    for (BinaryOp op : kOps) {
      ExpectBackendInvariant(
          [&] {
            Tensor out(rows, cols);
            BroadcastCol(a, col, op, &out);
            return out;
          },
          "BroadcastCol iter " + std::to_string(iter));
      if (::testing::Test::HasFatalFailure()) return;
      ExpectBackendInvariant(
          [&] {
            Tensor out(rows, cols);
            BroadcastRow(a, row, op, &out);
            return out;
          },
          "BroadcastRow iter " + std::to_string(iter));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(KernelDifferentialTest, ElementwiseTensorOps) {
  util::Rng rng(303);
  for (int iter = 0; iter < 6; ++iter) {
    const int64_t rows = RandDim(rng, 1, 300);
    const int64_t cols = RandDim(rng, 1, 120);
    const Tensor x = RandomTensor(rng, rows, cols, 0.01);
    const Tensor y = RandomTensor(rng, rows, cols, 0.01);
    ExpectBackendInvariant(
        [&] {
          Tensor t = x;
          t.Scale(-1.25f);
          return t;
        },
        "Tensor::Scale iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
    ExpectBackendInvariant(
        [&] {
          Tensor t = x;
          t.AddInPlace(y);
          return t;
        },
        "Tensor::AddInPlace iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
    ExpectBackendInvariant(
        [&] {
          Tensor t = x;
          t.AddScaledInPlace(y, 0.37f);
          return t;
        },
        "Tensor::AddScaledInPlace iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(KernelDifferentialTest, PairwiseKernels) {
  util::Rng rng(304);
  for (int iter = 0; iter < 4; ++iter) {
    const Tensor a = RandomTensor(rng, RandDim(rng, 1, 60),
                                  RandDim(rng, 1, 50));
    const Tensor b = RandomTensor(rng, RandDim(rng, 1, 60), a.cols());
    ExpectBackendInvariant([&] { return PairwiseSquaredDistances(a, b); },
                           "PairwiseSquaredDistances iter " +
                               std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
    ExpectBackendInvariant([&] { return PairwiseCosine(a, b); },
                           "PairwiseCosine iter " + std::to_string(iter));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// The canonical exp itself: every backend's expf1 must agree bitwise with
// the scalar table across the whole interesting range and on specials.
// ---------------------------------------------------------------------------

TEST(KernelDifferentialTest, CanonicalExpBitwiseAcrossBackends) {
  std::vector<float> xs;
  for (float x = -110.0f; x <= 110.0f; x += 0.0917f) xs.push_back(x);
  xs.push_back(std::numeric_limits<float>::infinity());
  xs.push_back(-std::numeric_limits<float>::infinity());
  xs.push_back(std::numeric_limits<float>::quiet_NaN());
  xs.push_back(std::numeric_limits<float>::denorm_min());
  xs.push_back(-0.0f);
  xs.push_back(88.3762626647949f);   // overflow threshold
  xs.push_back(-87.3365478515625f);  // flush-to-zero threshold
  const KernelTable& scalar = TableFor(KernelBackendKind::kScalar);
  for (KernelBackendKind kind : SupportedBackends()) {
    const KernelTable& kt = TableFor(kind);
    for (float x : xs) {
      ASSERT_EQ(BitsOf(scalar.expf1(x)), BitsOf(kt.expf1(x)))
          << "expf1(" << x << ") on " << KernelBackendName(kind);
    }
  }
}

// Sanity on the environment contract: parsing and support reporting.
TEST(KernelDifferentialTest, BackendSelectionApi) {
  KernelBackendKind kind;
  EXPECT_TRUE(ParseKernelBackendName("scalar", &kind));
  EXPECT_EQ(kind, KernelBackendKind::kScalar);
  EXPECT_TRUE(ParseKernelBackendName("auto", &kind));
  EXPECT_EQ(kind, BestSupportedBackend());
  EXPECT_FALSE(ParseKernelBackendName("avx512", &kind));
  EXPECT_TRUE(BackendSupported(KernelBackendKind::kScalar));
  // The active backend is always one of the supported ones.
  bool found = false;
  for (KernelBackendKind k : SupportedBackends()) {
    found = found || k == ActiveKernels().kind;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tensor
}  // namespace contratopic
