#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace util {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, UniformIntUnbiasedOverSmallRange) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, GumbelMeanIsEulerGamma) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gumbel();
  EXPECT_NEAR(sum / n, 0.5772, 0.03);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(17);
  for (double shape : {0.3, 1.0, 2.5, 8.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.08) << "shape=" << shape;
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    const auto draw = rng.Dirichlet(0.1, 10);
    double sum = 0.0;
    for (double v : draw) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RngTest, SmallDirichletAlphaIsSparse) {
  Rng rng(23);
  double max_sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const auto draw = rng.Dirichlet(0.05, 20);
    double max_v = 0.0;
    for (double v : draw) max_v = std::max(max_v, v);
    max_sum += max_v;
  }
  // With alpha = 0.05 most of the mass sits on one coordinate.
  EXPECT_GT(max_sum / trials, 0.55);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(50, 10);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (int s : sample) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 50);
    }
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(v);
  std::set<int> unique(v.begin(), v.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  EXPECT_NE(a.NextUint64(), child.NextUint64());
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringTest, SplitDropsEmptyPieces) {
  const auto pieces = Split("a,,b;c", ",;");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringTest, SplitEmptyInput) {
  EXPECT_TRUE(Split("", ",").empty());
  EXPECT_TRUE(Split(",,,", ",").empty());
}

TEST(StringTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo123"), "hello123");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("contratopic", "contra"));
  EXPECT_FALSE(StartsWith("con", "contra"));
  EXPECT_TRUE(EndsWith("model.cc", ".cc"));
  EXPECT_FALSE(EndsWith("model.h", ".cc"));
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

TEST(FlagsTest, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--epochs=20", "--scale=small", "--verbose",
                        "positional"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("epochs", 0), 20);
  EXPECT_EQ(flags.GetString("scale", ""), "small");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, Defaults) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 5), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.5), 0.5);
  EXPECT_FALSE(flags.Has("k"));
}

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// TableWriter
// ---------------------------------------------------------------------------

TEST(TableWriterTest, RendersAlignedTable) {
  TableWriter table({"model", "score"});
  table.AddRow({"ETM", "0.4"});
  table.AddRow("ContraTopic", {0.523}, 3);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("ContraTopic"), std::string::npos);
  EXPECT_NE(out.find("0.523"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(TableWriterTest, WritesTsv) {
  TableWriter table({"a", "b"});
  table.AddRow({"1", "2"});
  const std::string path = ::testing::TempDir() + "/ct_table_test.tsv";
  ASSERT_TRUE(table.WriteTsv(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[64] = {0};
  ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
  EXPECT_EQ(std::string(buffer), "a\tb\n");
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(SerializeTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/ct_serialize_test.bin";
  {
    BinaryWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteU32(7);
    writer.WriteU64(1ull << 40);
    writer.WriteF32(2.5f);
    writer.WriteString("hello");
    writer.WriteFloatVector({1.0f, -2.0f, 3.5f});
    writer.WriteIntVector({4, 5});
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ReadU32(), 7u);
  EXPECT_EQ(reader.ReadU64(), 1ull << 40);
  EXPECT_FLOAT_EQ(reader.ReadF32(), 2.5f);
  EXPECT_EQ(reader.ReadString(), "hello");
  EXPECT_EQ(reader.ReadFloatVector(), (std::vector<float>{1.0f, -2.0f, 3.5f}));
  EXPECT_EQ(reader.ReadIntVector(), (std::vector<int>{4, 5}));
  EXPECT_TRUE(reader.status().ok());
}

TEST(SerializeTest, MissingFileReportsError) {
  BinaryReader reader("/nonexistent/definitely/missing.bin");
  EXPECT_FALSE(reader.ok());
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(2);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, 1000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i] += 1;
  }, /*min_chunk=*/16);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);
}

}  // namespace
}  // namespace util
}  // namespace contratopic
