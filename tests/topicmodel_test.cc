#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "tensor/kernels.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "serve/checkpoint.h"
#include "text/synthetic.h"
#include "topicmodel/lda.h"
#include "topicmodel/neural_base.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace topicmodel {
namespace {

using tensor::Tensor;

// Shared tiny dataset + embeddings for the whole file (built once).
struct SharedFixture {
  text::SyntheticDataset dataset;
  embed::WordEmbeddings embeddings;
  eval::NpmiMatrix test_npmi;

  SharedFixture()
      : dataset(text::GenerateSynthetic(text::Preset20NG(0.15))),
        embeddings(embed::WordEmbeddings::Train(dataset.train, [] {
          embed::EmbeddingConfig c;
          c.dimension = 24;
          return c;
        }())),
        test_npmi(eval::NpmiMatrix::Compute(dataset.test)) {}
};

SharedFixture& Shared() {
  static SharedFixture* fixture = new SharedFixture();
  return *fixture;
}

TrainConfig TinyConfig() {
  TrainConfig config;
  config.num_topics = 8;
  config.epochs = 3;
  config.batch_size = 128;
  config.encoder_hidden = 32;
  config.encoder_layers = 1;
  return config;
}

void ExpectRowsSumToOne(const Tensor& m, float tol = 1e-3f) {
  for (int64_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < m.cols(); ++c) {
      EXPECT_GE(m.at(r, c), -1e-6f);
      sum += m.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, tol) << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// Parameterized: every model in the zoo trains and produces valid outputs.
// ---------------------------------------------------------------------------

class ModelZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZooTest, TrainsAndProducesValidDistributions) {
  const std::string name = GetParam();
  SharedFixture& shared = Shared();
  auto model =
      core::CreateModel(name, TinyConfig(), shared.embeddings);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->num_topics(), 8);

  const TrainStats stats = model->Train(shared.dataset.train);
  EXPECT_GT(stats.total_seconds, 0.0);

  const Tensor beta = model->Beta();
  EXPECT_EQ(beta.rows(), 8);
  EXPECT_EQ(beta.cols(), shared.dataset.train.vocab_size());
  ExpectRowsSumToOne(beta);
  for (int64_t i = 0; i < beta.numel(); ++i) {
    ASSERT_FALSE(std::isnan(beta.data()[i])) << name << " produced NaN beta";
  }

  const Tensor theta = model->InferTheta(shared.dataset.test);
  EXPECT_EQ(theta.rows(), shared.dataset.test.num_docs());
  EXPECT_EQ(theta.cols(), 8);
  ExpectRowsSumToOne(theta);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values("lda", "prodlda", "wlda", "etm", "nstm", "wete", "ntmr",
                      "vtmrl", "clntm", "tsctm", "contratopic", "contratopic-p",
                      "contratopic-n", "contratopic-i", "contratopic-s",
                      "contratopic-wlda", "contratopic-wete"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelZooTest, DisplayNames) {
  EXPECT_EQ(core::DisplayName("contratopic"), "ContraTopic");
  EXPECT_EQ(core::DisplayName("ntmr"), "NTM-R");
  EXPECT_EQ(core::DisplayName("contratopic-wlda"), "ContraTopic(WLDA)");
}

TEST(ModelZooTest, PaperLineupHasElevenModels) {
  EXPECT_EQ(core::PaperModelNames().size(), 11u);
  EXPECT_EQ(core::AblationModelNames().size(), 5u);
}

// ---------------------------------------------------------------------------
// Multi-objective (MOO) loss weighting: deterministic inverse-gradient-norm
// weights over the per-objective terms (--loss-weighting=moo).
// ---------------------------------------------------------------------------

TEST(MultiObjectiveWeightsTest, WeightsAreNormalizedAndInverseToNorms) {
  // Objective 0 has gradient norm 3 (a single 3.0 entry), objective 1 has
  // norm 4: w0/w1 must equal 4/3 and the weights must sum to 1.
  std::vector<std::vector<Tensor>> grads(2);
  grads[0].push_back(Tensor(1, 2, {3.0f, 0.0f}));
  grads[0].push_back(Tensor(1, 1, {0.0f}));
  grads[1].push_back(Tensor(1, 2, {0.0f, 4.0f}));
  grads[1].push_back(Tensor(1, 1, {0.0f}));
  const std::vector<double> w = MultiObjectiveWeights(grads);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
  EXPECT_NEAR(w[0] / w[1], 4.0 / 3.0, 1e-6);
}

TEST(MultiObjectiveWeightsTest, DeterministicAcrossRepeatedCalls) {
  util::Rng rng(11);
  std::vector<std::vector<Tensor>> grads(3);
  for (auto& objective : grads) {
    objective.push_back(Tensor::RandNormal(4, 5, rng, 0.0f, 1.0f));
    objective.push_back(Tensor::RandNormal(2, 3, rng, 0.0f, 0.1f));
  }
  const std::vector<double> first = MultiObjectiveWeights(grads);
  const std::vector<double> second = MultiObjectiveWeights(grads);
  ASSERT_EQ(first.size(), 3u);
  for (size_t k = 0; k < first.size(); ++k) {
    EXPECT_EQ(first[k], second[k]) << "objective " << k;  // bitwise
  }
  double sum = 0.0;
  for (double v : first) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MultiObjectiveWeightsTest, ZeroGradientObjectiveDominates) {
  // An all-zero gradient means the epsilon floor gives that objective the
  // (finite) largest weight; nothing divides by zero.
  std::vector<std::vector<Tensor>> grads(2);
  grads[0].push_back(Tensor(2, 2));  // zeros
  grads[1].push_back(Tensor(2, 2, {1.0f, 1.0f, 1.0f, 1.0f}));
  const std::vector<double> w = MultiObjectiveWeights(grads);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_GT(w[0], w[1]);
  EXPECT_TRUE(std::isfinite(w[0]) && std::isfinite(w[1]));
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
}

TEST(MultiObjectiveWeightsTest, EmptyInputYieldsNoWeights) {
  EXPECT_TRUE(MultiObjectiveWeights({}).empty());
}

TEST(MooTrainingTest, MooRunDivergesFromFixedButStaysValid) {
  // The weighting mode must actually change the optimization (different
  // beta than fixed-lambda) while keeping every output finite and
  // normalized. ETM populates {recon, kl} objectives.
  SharedFixture& shared = Shared();
  const auto train_with = [&](topicmodel::LossWeighting weighting) {
    auto model = core::CreateModel("etm", TinyConfig(), shared.embeddings);
    auto* neural = dynamic_cast<NeuralTopicModel*>(model.get());
    CHECK(neural != nullptr);
    neural->SetLossWeighting(weighting);
    const TrainStats stats = model->Train(shared.dataset.train);
    CHECK(stats.status.ok()) << stats.status.ToString();
    return model->Beta();
  };
  const Tensor fixed = train_with(topicmodel::LossWeighting::kFixed);
  const Tensor moo = train_with(topicmodel::LossWeighting::kMoo);
  ExpectRowsSumToOne(moo);
  int64_t diffs = 0;
  for (int64_t i = 0; i < fixed.numel(); ++i) {
    ASSERT_FALSE(std::isnan(moo.data()[i]));
    if (fixed.data()[i] != moo.data()[i]) ++diffs;
  }
  EXPECT_GT(diffs, 0) << "moo weighting had no effect on training";
}

// ---------------------------------------------------------------------------
// LDA-specific behaviour.
// ---------------------------------------------------------------------------

TEST(LdaTest, RecoversPlantedClusters) {
  // Two disjoint word clusters; LDA with K=2 must separate them.
  text::Vocabulary vocab;
  for (int w = 0; w < 10; ++w) {
    vocab.AddWord("w" + std::to_string(w));
  }
  std::vector<text::Document> docs;
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    text::Document d;
    const int base = (i % 2) * 5;
    for (int j = 0; j < 5; ++j) {
      d.entries.push_back({base + j, 1 + static_cast<int>(rng.UniformInt(3))});
    }
    docs.push_back(d);
  }
  LdaModel lda(2, 7);
  lda.Train(text::BowCorpus(vocab, docs));
  const Tensor beta = lda.Beta();
  // Each topic's mass concentrates on one cluster.
  for (int k = 0; k < 2; ++k) {
    double first = 0.0, second = 0.0;
    for (int w = 0; w < 5; ++w) first += beta.at(k, w);
    for (int w = 5; w < 10; ++w) second += beta.at(k, w);
    EXPECT_GT(std::max(first, second), 0.9) << "topic " << k << " is mixed";
  }
}

TEST(LdaTest, InferThetaReflectsDocumentContent) {
  text::Vocabulary vocab;
  for (int w = 0; w < 10; ++w) vocab.AddWord("w" + std::to_string(w));
  std::vector<text::Document> docs;
  for (int i = 0; i < 60; ++i) {
    text::Document d;
    const int base = (i % 2) * 5;
    for (int j = 0; j < 5; ++j) d.entries.push_back({base + j, 2});
    docs.push_back(d);
  }
  text::BowCorpus corpus(vocab, docs);
  LdaModel lda(2, 11);
  lda.Train(corpus);
  const Tensor theta = lda.InferTheta(corpus);
  // Documents from different clusters get different dominant topics.
  const int dominant0 = theta.TopKIndicesOfRow(0, 1)[0];
  const int dominant1 = theta.TopKIndicesOfRow(1, 1)[0];
  EXPECT_NE(dominant0, dominant1);
}

// ---------------------------------------------------------------------------
// Learning sanity: trained models beat random beta on coherence.
// ---------------------------------------------------------------------------

TEST(LearningTest, EtmBeatsRandomBetaOnCoherence) {
  SharedFixture& shared = Shared();
  TrainConfig config = TinyConfig();
  config.epochs = 8;
  auto model = core::CreateModel("etm", config, shared.embeddings);
  model->Train(shared.dataset.train);
  const auto trained_coherence = eval::PerTopicCoherence(
      model->Beta(), shared.test_npmi);

  util::Rng rng(17);
  const Tensor random_beta = tensor::SoftmaxRows(Tensor::RandNormal(
      8, shared.dataset.train.vocab_size(), rng));
  const auto random_coherence =
      eval::PerTopicCoherence(random_beta, shared.test_npmi);

  EXPECT_GT(eval::CoherenceAtProportion(trained_coherence, 1.0),
            eval::CoherenceAtProportion(random_coherence, 1.0) + 0.1);
}

TEST(LearningTest, TrainingReducesLoss) {
  SharedFixture& shared = Shared();
  TrainConfig config = TinyConfig();
  config.epochs = 1;
  auto short_model = core::CreateModel("etm", config, shared.embeddings);
  const double loss_short =
      short_model->Train(shared.dataset.train).final_loss;
  config.epochs = 8;
  auto long_model = core::CreateModel("etm", config, shared.embeddings);
  const double loss_long = long_model->Train(shared.dataset.train).final_loss;
  EXPECT_LT(loss_long, loss_short);
}

TEST(NeuralBaseTest, TrainTwiceIsAnError) {
  SharedFixture& shared = Shared();
  auto model = core::CreateModel("etm", TinyConfig(), shared.embeddings);
  model->Train(shared.dataset.train);
  EXPECT_DEATH(model->Train(shared.dataset.train), "already trained");
}

TEST(NeuralBaseTest, BetaBeforeTrainingIsAnError) {
  SharedFixture& shared = Shared();
  auto model = core::CreateModel("etm", TinyConfig(), shared.embeddings);
  EXPECT_DEATH(model->Beta(), "not trained");
}

// ---------------------------------------------------------------------------
// Fault tolerance (DESIGN.md §11): crash recovery and numeric guard rails
// ---------------------------------------------------------------------------

bool TensorsBitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.rows()) * a.cols() *
                         sizeof(float)) == 0;
}

// Train a model, kill it mid-run right after an auto-checkpoint, rebuild
// from the file, resume -- and require the resumed run's beta, theta, and
// final loss to be bitwise-identical to an uninterrupted run's.
void RunCrashRecovery(int num_threads, const std::string& model_name) {
  SharedFixture& shared = Shared();
  const text::Vocabulary& vocab = shared.dataset.train.vocab();
  util::FaultInjector& faults = util::FaultInjector::Global();
  util::ThreadPool::SetGlobalNumThreads(num_threads);
  faults.Reset();

  const TrainConfig config = TinyConfig();
  const int steps_per_epoch =
      (shared.dataset.train.num_docs() + config.batch_size - 1) /
      config.batch_size;
  const int total_steps = config.epochs * steps_per_epoch;
  // Checkpoint mid-epoch, then crash two steps after the first one, so
  // the resume replays a partially accumulated epoch.
  const int ckpt_every = std::max(1, steps_per_epoch - 1);
  const int kill_step = ckpt_every + 2;
  ASSERT_LE(kill_step, total_steps) << "fixture too small for a mid-run kill";

  // Straight-through reference.
  auto straight = core::CreateModel(model_name, config, shared.embeddings);
  const TrainStats straight_stats = straight->Train(shared.dataset.train);
  ASSERT_TRUE(straight_stats.status.ok()) << straight_stats.status;

  // Interrupted run: auto-checkpoint to disk, injected kill.
  const std::string path = ::testing::TempDir() + "/crash_recovery_" +
                           model_name + "_" + std::to_string(num_threads) +
                           ".ckpt";
  auto interrupted_owner =
      core::CreateModel(model_name, config, shared.embeddings);
  auto* interrupted =
      dynamic_cast<NeuralTopicModel*>(interrupted_owner.get());
  ASSERT_NE(interrupted, nullptr);
  interrupted->SetAutoCheckpoint(
      ckpt_every, [&](const TrainingState& state) {
        return serve::SaveTrainingCheckpoint(*interrupted, vocab, state,
                                             path);
      });
  util::FaultSpec kill;
  kill.every_nth = kill_step;  // the kill site is consulted once per step
  kill.max_fires = 1;
  faults.Arm("train.kill", kill);
  const TrainStats killed = interrupted->Train(shared.dataset.train);
  faults.Reset();
  ASSERT_TRUE(killed.interrupted);
  EXPECT_EQ(killed.status.code(), util::StatusCode::kCancelled);
  EXPECT_FALSE(interrupted->trained());

  // Recovery: read the checkpoint a "fresh process" would find, rebuild
  // the architecture, and resume the remaining steps.
  util::StatusOr<serve::Checkpoint> ckpt = serve::ReadCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  ASSERT_TRUE(ckpt->has_training_state);
  // The file on disk is the last checkpoint written at or before the kill
  // step (the kill site runs right after the checkpoint sink).
  EXPECT_GT(ckpt->training_state.next_global_step, 0);
  EXPECT_LE(ckpt->training_state.next_global_step, kill_step);
  EXPECT_EQ(ckpt->training_state.next_global_step % ckpt_every, 0);
  util::StatusOr<std::unique_ptr<NeuralTopicModel>> resumed =
      serve::ResumeModel(*ckpt);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_FALSE((*resumed)->trained());
  const TrainStats resumed_stats =
      (*resumed)->ResumeTraining(shared.dataset.train,
                                 ckpt->training_state);
  ASSERT_TRUE(resumed_stats.status.ok()) << resumed_stats.status;
  EXPECT_TRUE((*resumed)->trained());

  EXPECT_TRUE(TensorsBitwiseEqual((*resumed)->Beta(), straight->Beta()));
  EXPECT_TRUE(TensorsBitwiseEqual((*resumed)->InferTheta(shared.dataset.test),
                                  straight->InferTheta(shared.dataset.test)));
  EXPECT_EQ(resumed_stats.final_loss, straight_stats.final_loss);
  util::ThreadPool::SetGlobalNumThreads(0);
}

TEST(FaultToleranceTest, CrashRecoveryIsBitwiseIdenticalSingleThreaded) {
  RunCrashRecovery(1, "etm");
}

TEST(FaultToleranceTest, CrashRecoveryIsBitwiseIdenticalFourThreads) {
  RunCrashRecovery(4, "etm");
}

// Regression: ContraTopic wraps a backbone that is itself a
// NeuralTopicModel with its own RNG (the encoder noise stream). A
// checkpoint that captured only the wrapper's generator would replay the
// post-resume steps with desynced encoder noise -- beta would still match
// (it is cached from the pre-update forward of the last step, a
// decoder-only function) while theta and the loss silently drift.
// TrainingRngs() must cover every stream (DESIGN.md §11).
TEST(FaultToleranceTest, CrashRecoveryCoversWrappedBackboneRngStreams) {
  RunCrashRecovery(1, "contratopic");
}

TEST(FaultToleranceTest, NanLossRollsBackAndStillMatchesACleanRun) {
  SharedFixture& shared = Shared();
  util::FaultInjector& faults = util::FaultInjector::Global();
  faults.Reset();

  auto clean = core::CreateModel("etm", TinyConfig(), shared.embeddings);
  const TrainStats clean_stats = clean->Train(shared.dataset.train);
  ASSERT_TRUE(clean_stats.status.ok());
  EXPECT_EQ(clean_stats.rollbacks, 0);

  auto guarded_owner =
      core::CreateModel("etm", TinyConfig(), shared.embeddings);
  auto* guarded = dynamic_cast<NeuralTopicModel*>(guarded_owner.get());
  ASSERT_NE(guarded, nullptr);
  guarded->SetGuardRails(GuardRailOptions());
  util::FaultSpec nan_once;
  nan_once.every_nth = 3;  // corrupt the third step's loss, once
  nan_once.max_fires = 1;
  faults.Arm("train.loss_corrupt", nan_once);
  const TrainStats stats = guarded->Train(shared.dataset.train);
  faults.Reset();

  ASSERT_TRUE(stats.status.ok()) << stats.status;
  EXPECT_FALSE(stats.interrupted);
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_TRUE(guarded->trained());
  // The rollback replayed the poisoned step from the last good snapshot,
  // so the recovered run is indistinguishable from a clean one.
  EXPECT_TRUE(TensorsBitwiseEqual(guarded->Beta(), clean->Beta()));
  EXPECT_EQ(stats.final_loss, clean_stats.final_loss);
}

TEST(FaultToleranceTest, PersistentNanExhaustsTheRollbackBudget) {
  SharedFixture& shared = Shared();
  util::FaultInjector& faults = util::FaultInjector::Global();
  faults.Reset();

  auto owner = core::CreateModel("etm", TinyConfig(), shared.embeddings);
  auto* model = dynamic_cast<NeuralTopicModel*>(owner.get());
  ASSERT_NE(model, nullptr);
  GuardRailOptions rails;
  rails.max_rollbacks = 3;
  model->SetGuardRails(rails);
  util::FaultSpec always;
  always.every_nth = 1;  // every step's loss is NaN: rollback cannot help
  faults.Arm("train.loss_corrupt", always);
  const TrainStats stats = model->Train(shared.dataset.train);
  faults.Reset();

  ASSERT_FALSE(stats.status.ok());
  EXPECT_EQ(stats.status.code(), util::StatusCode::kDataLoss);
  EXPECT_TRUE(stats.interrupted);
  EXPECT_EQ(stats.rollbacks, 3);
  EXPECT_FALSE(model->trained());
}

TEST(FaultToleranceTest, ResumeRejectsMismatchedState) {
  SharedFixture& shared = Shared();
  // A trained model cannot be resumed...
  auto trained_owner =
      core::CreateModel("etm", TinyConfig(), shared.embeddings);
  auto* trained = dynamic_cast<NeuralTopicModel*>(trained_owner.get());
  ASSERT_NE(trained, nullptr);
  trained->Train(shared.dataset.train);
  const TrainStats on_trained =
      trained->ResumeTraining(shared.dataset.train, TrainingState());
  EXPECT_TRUE(on_trained.interrupted);
  EXPECT_FALSE(on_trained.status.ok());

  // ...and a fresh model rejects state captured against a different
  // corpus (num_docs mismatch) instead of silently diverging.
  auto fresh_owner = core::CreateModel("etm", TinyConfig(), shared.embeddings);
  auto* fresh = dynamic_cast<NeuralTopicModel*>(fresh_owner.get());
  ASSERT_NE(fresh, nullptr);
  TrainingState mismatched;
  mismatched.num_docs = shared.dataset.train.num_docs() + 1;
  mismatched.total_epochs = 3;
  const TrainStats on_mismatch =
      fresh->ResumeTraining(shared.dataset.train, mismatched);
  EXPECT_TRUE(on_mismatch.interrupted);
  EXPECT_FALSE(on_mismatch.status.ok());
  EXPECT_FALSE(fresh->trained());
}

}  // namespace
}  // namespace topicmodel
}  // namespace contratopic
