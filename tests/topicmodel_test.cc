#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "tensor/kernels.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "text/synthetic.h"
#include "topicmodel/lda.h"

namespace contratopic {
namespace topicmodel {
namespace {

using tensor::Tensor;

// Shared tiny dataset + embeddings for the whole file (built once).
struct SharedFixture {
  text::SyntheticDataset dataset;
  embed::WordEmbeddings embeddings;
  eval::NpmiMatrix test_npmi;

  SharedFixture()
      : dataset(text::GenerateSynthetic(text::Preset20NG(0.15))),
        embeddings(embed::WordEmbeddings::Train(dataset.train, [] {
          embed::EmbeddingConfig c;
          c.dimension = 24;
          return c;
        }())),
        test_npmi(eval::NpmiMatrix::Compute(dataset.test)) {}
};

SharedFixture& Shared() {
  static SharedFixture* fixture = new SharedFixture();
  return *fixture;
}

TrainConfig TinyConfig() {
  TrainConfig config;
  config.num_topics = 8;
  config.epochs = 3;
  config.batch_size = 128;
  config.encoder_hidden = 32;
  config.encoder_layers = 1;
  return config;
}

void ExpectRowsSumToOne(const Tensor& m, float tol = 1e-3f) {
  for (int64_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < m.cols(); ++c) {
      EXPECT_GE(m.at(r, c), -1e-6f);
      sum += m.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, tol) << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// Parameterized: every model in the zoo trains and produces valid outputs.
// ---------------------------------------------------------------------------

class ModelZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZooTest, TrainsAndProducesValidDistributions) {
  const std::string name = GetParam();
  SharedFixture& shared = Shared();
  auto model =
      core::CreateModel(name, TinyConfig(), shared.embeddings);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->num_topics(), 8);

  const TrainStats stats = model->Train(shared.dataset.train);
  EXPECT_GT(stats.total_seconds, 0.0);

  const Tensor beta = model->Beta();
  EXPECT_EQ(beta.rows(), 8);
  EXPECT_EQ(beta.cols(), shared.dataset.train.vocab_size());
  ExpectRowsSumToOne(beta);
  for (int64_t i = 0; i < beta.numel(); ++i) {
    ASSERT_FALSE(std::isnan(beta.data()[i])) << name << " produced NaN beta";
  }

  const Tensor theta = model->InferTheta(shared.dataset.test);
  EXPECT_EQ(theta.rows(), shared.dataset.test.num_docs());
  EXPECT_EQ(theta.cols(), 8);
  ExpectRowsSumToOne(theta);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values("lda", "prodlda", "wlda", "etm", "nstm", "wete", "ntmr",
                      "vtmrl", "clntm", "contratopic", "contratopic-p",
                      "contratopic-n", "contratopic-i", "contratopic-s",
                      "contratopic-wlda", "contratopic-wete"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelZooTest, DisplayNames) {
  EXPECT_EQ(core::DisplayName("contratopic"), "ContraTopic");
  EXPECT_EQ(core::DisplayName("ntmr"), "NTM-R");
  EXPECT_EQ(core::DisplayName("contratopic-wlda"), "ContraTopic(WLDA)");
}

TEST(ModelZooTest, PaperLineupHasTenModels) {
  EXPECT_EQ(core::PaperModelNames().size(), 10u);
  EXPECT_EQ(core::AblationModelNames().size(), 5u);
}

// ---------------------------------------------------------------------------
// LDA-specific behaviour.
// ---------------------------------------------------------------------------

TEST(LdaTest, RecoversPlantedClusters) {
  // Two disjoint word clusters; LDA with K=2 must separate them.
  text::Vocabulary vocab;
  for (int w = 0; w < 10; ++w) {
    vocab.AddWord("w" + std::to_string(w));
  }
  std::vector<text::Document> docs;
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    text::Document d;
    const int base = (i % 2) * 5;
    for (int j = 0; j < 5; ++j) {
      d.entries.push_back({base + j, 1 + static_cast<int>(rng.UniformInt(3))});
    }
    docs.push_back(d);
  }
  LdaModel lda(2, 7);
  lda.Train(text::BowCorpus(vocab, docs));
  const Tensor beta = lda.Beta();
  // Each topic's mass concentrates on one cluster.
  for (int k = 0; k < 2; ++k) {
    double first = 0.0, second = 0.0;
    for (int w = 0; w < 5; ++w) first += beta.at(k, w);
    for (int w = 5; w < 10; ++w) second += beta.at(k, w);
    EXPECT_GT(std::max(first, second), 0.9) << "topic " << k << " is mixed";
  }
}

TEST(LdaTest, InferThetaReflectsDocumentContent) {
  text::Vocabulary vocab;
  for (int w = 0; w < 10; ++w) vocab.AddWord("w" + std::to_string(w));
  std::vector<text::Document> docs;
  for (int i = 0; i < 60; ++i) {
    text::Document d;
    const int base = (i % 2) * 5;
    for (int j = 0; j < 5; ++j) d.entries.push_back({base + j, 2});
    docs.push_back(d);
  }
  text::BowCorpus corpus(vocab, docs);
  LdaModel lda(2, 11);
  lda.Train(corpus);
  const Tensor theta = lda.InferTheta(corpus);
  // Documents from different clusters get different dominant topics.
  const int dominant0 = theta.TopKIndicesOfRow(0, 1)[0];
  const int dominant1 = theta.TopKIndicesOfRow(1, 1)[0];
  EXPECT_NE(dominant0, dominant1);
}

// ---------------------------------------------------------------------------
// Learning sanity: trained models beat random beta on coherence.
// ---------------------------------------------------------------------------

TEST(LearningTest, EtmBeatsRandomBetaOnCoherence) {
  SharedFixture& shared = Shared();
  TrainConfig config = TinyConfig();
  config.epochs = 8;
  auto model = core::CreateModel("etm", config, shared.embeddings);
  model->Train(shared.dataset.train);
  const auto trained_coherence = eval::PerTopicCoherence(
      model->Beta(), shared.test_npmi);

  util::Rng rng(17);
  const Tensor random_beta = tensor::SoftmaxRows(Tensor::RandNormal(
      8, shared.dataset.train.vocab_size(), rng));
  const auto random_coherence =
      eval::PerTopicCoherence(random_beta, shared.test_npmi);

  EXPECT_GT(eval::CoherenceAtProportion(trained_coherence, 1.0),
            eval::CoherenceAtProportion(random_coherence, 1.0) + 0.1);
}

TEST(LearningTest, TrainingReducesLoss) {
  SharedFixture& shared = Shared();
  TrainConfig config = TinyConfig();
  config.epochs = 1;
  auto short_model = core::CreateModel("etm", config, shared.embeddings);
  const double loss_short =
      short_model->Train(shared.dataset.train).final_loss;
  config.epochs = 8;
  auto long_model = core::CreateModel("etm", config, shared.embeddings);
  const double loss_long = long_model->Train(shared.dataset.train).final_loss;
  EXPECT_LT(loss_long, loss_short);
}

TEST(NeuralBaseTest, TrainTwiceIsAnError) {
  SharedFixture& shared = Shared();
  auto model = core::CreateModel("etm", TinyConfig(), shared.embeddings);
  model->Train(shared.dataset.train);
  EXPECT_DEATH(model->Train(shared.dataset.train), "already trained");
}

TEST(NeuralBaseTest, BetaBeforeTrainingIsAnError) {
  SharedFixture& shared = Shared();
  auto model = core::CreateModel("etm", TinyConfig(), shared.embeddings);
  EXPECT_DEATH(model->Beta(), "not trained");
}

}  // namespace
}  // namespace topicmodel
}  // namespace contratopic
