#include <set>
#include <string>

#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/preprocess.h"
#include "text/synthetic.h"
#include "text/themes.h"
#include "text/vocabulary.h"

namespace contratopic {
namespace text {
namespace {

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary vocab;
  const int a = vocab.AddWord("alpha");
  const int b = vocab.AddWord("beta");
  EXPECT_EQ(vocab.AddWord("alpha"), a);  // Idempotent.
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_EQ(vocab.GetId("beta"), b);
  EXPECT_EQ(vocab.GetId("gamma"), -1);
  EXPECT_EQ(vocab.Word(a), "alpha");
  EXPECT_TRUE(vocab.Contains("beta"));
}

TEST(TokenizeTest, SplitsAndLowercases) {
  const auto tokens = Tokenize("Hello, World! MP3 x 42 foo_bar", true);
  // "x" is a single char (dropped); "42" starts with digit (dropped).
  std::set<std::string> set(tokens.begin(), tokens.end());
  EXPECT_TRUE(set.count("hello"));
  EXPECT_TRUE(set.count("world"));
  EXPECT_TRUE(set.count("mp3"));
  EXPECT_TRUE(set.count("foo_bar"));
  EXPECT_FALSE(set.count("x"));
  EXPECT_FALSE(set.count("42"));
}

TEST(StopWordTest, CommonWordsAreStopWords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("and"));
  EXPECT_FALSE(IsStopWord("topic"));
}

TEST(PreprocessTest, RemovesStopWordsAndRareWords) {
  std::vector<RawDocument> docs;
  for (int i = 0; i < 10; ++i) {
    docs.push_back({"the quick brown fox jumps over lazy dog", -1});
  }
  docs.push_back({"the unique zebra word appears once quick brown", -1});
  PreprocessOptions options;
  options.min_doc_frequency = 2;
  options.max_doc_frequency_fraction = 2.0;  // Disable max filter.
  BowCorpus corpus = Preprocess(docs, options);
  EXPECT_EQ(corpus.vocab().GetId("the"), -1);     // Stop word.
  EXPECT_EQ(corpus.vocab().GetId("zebra"), -1);   // df = 1 < 2.
  EXPECT_GE(corpus.vocab().GetId("quick"), 0);    // df = 11.
}

TEST(PreprocessTest, MaxDocFrequencyFilter) {
  std::vector<RawDocument> docs;
  for (int i = 0; i < 10; ++i) {
    std::string text = "ubiquitous filler";
    if (i < 5) text += " selective council";
    docs.push_back({text, -1});
  }
  PreprocessOptions options;
  options.min_doc_frequency = 1;
  options.max_doc_frequency_fraction = 0.7;
  BowCorpus corpus = Preprocess(docs, options);
  EXPECT_EQ(corpus.vocab().GetId("ubiquitous"), -1);  // df = 100%.
  EXPECT_GE(corpus.vocab().GetId("selective"), 0);    // df = 50%.
}

TEST(PreprocessTest, DropsShortDocuments) {
  std::vector<RawDocument> docs(5, RawDocument{"alpha beta gamma delta", -1});
  docs.push_back({"alpha", -1});  // 1 token after filtering < 2.
  PreprocessOptions options;
  options.min_doc_frequency = 1;
  options.max_doc_frequency_fraction = 2.0;
  BowCorpus corpus = Preprocess(docs, options);
  EXPECT_EQ(corpus.num_docs(), 5);
}

TEST(PreprocessTest, KeepsLabels) {
  std::vector<RawDocument> docs = {{"alpha beta alpha", 3},
                                   {"beta alpha beta", 1}};
  PreprocessOptions options;
  options.min_doc_frequency = 1;
  options.max_doc_frequency_fraction = 2.0;
  BowCorpus corpus = Preprocess(docs, options, {"a", "b", "c", "d"});
  EXPECT_EQ(corpus.doc(0).label, 3);
  EXPECT_EQ(corpus.doc(1).label, 1);
  EXPECT_TRUE(corpus.HasLabels());
  EXPECT_EQ(corpus.num_labels(), 4);
}

TEST(CorpusTest, CountsAndDenseBatch) {
  Vocabulary vocab;
  vocab.AddWord("a");
  vocab.AddWord("b");
  vocab.AddWord("c");
  std::vector<Document> docs(2);
  docs[0].entries = {{0, 2}, {2, 1}};
  docs[0].label = 0;
  docs[1].entries = {{1, 4}};
  docs[1].label = 1;
  BowCorpus corpus(vocab, docs, {"x", "y"});

  EXPECT_EQ(corpus.TotalTokens(), 7);
  EXPECT_NEAR(corpus.AverageDocLength(), 3.5, 1e-9);

  const tensor::Tensor batch = corpus.DenseBatch({0, 1});
  EXPECT_FLOAT_EQ(batch.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(batch.at(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(batch.at(1, 1), 4.0f);

  const tensor::Tensor norm = corpus.NormalizedBatch({0});
  EXPECT_NEAR(norm.at(0, 0), 2.0f / 3.0f, 1e-6);

  const auto df = corpus.DocumentFrequencies();
  EXPECT_EQ(df[0], 1);
  EXPECT_EQ(df[1], 1);
  EXPECT_EQ(df[2], 1);

  EXPECT_EQ(corpus.Labels({1, 0}), (std::vector<int>{1, 0}));
}

TEST(CorpusTest, TfIdfFavorsRareWords) {
  Vocabulary vocab;
  vocab.AddWord("common");
  vocab.AddWord("rare");
  std::vector<Document> docs(4);
  for (auto& d : docs) d.entries = {{0, 1}};
  docs[0].entries.push_back({1, 1});
  BowCorpus corpus(vocab, docs);
  const auto df = corpus.DocumentFrequencies();
  const tensor::Tensor tfidf = corpus.TfIdfBatch({0}, df);
  EXPECT_GT(tfidf.at(0, 1), tfidf.at(0, 0));
}

TEST(SplitTest, PartitionsCorpus) {
  Vocabulary vocab;
  vocab.AddWord("w");
  std::vector<Document> docs(100);
  for (int i = 0; i < 100; ++i) {
    docs[i].entries = {{0, i + 1}};
    docs[i].label = i % 3;
  }
  util::Rng rng(3);
  TrainTestSplit split = SplitCorpus(BowCorpus(vocab, docs), 0.6, rng);
  EXPECT_EQ(split.train.num_docs(), 60);
  EXPECT_EQ(split.test.num_docs(), 40);
  // Same vocabulary object in both halves.
  EXPECT_EQ(split.train.vocab_size(), split.test.vocab_size());
}

TEST(BatchIteratorTest, CoversEveryDocEachEpoch) {
  util::Rng rng(5);
  BatchIterator it(10, 5, rng);
  EXPECT_EQ(it.batches_per_epoch(), 2);
  std::set<int> seen;
  for (int b = 0; b < 2; ++b) {
    for (int i : it.Next()) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(BatchIteratorTest, ClampsBatchSize) {
  util::Rng rng(6);
  BatchIterator it(3, 100, rng);
  EXPECT_EQ(it.Next().size(), 3u);
}

TEST(ThemesTest, CuratedThemesAreWellFormed) {
  const auto& themes = CuratedThemes();
  EXPECT_GE(themes.size(), 30u);
  std::set<std::string> names;
  for (const auto& t : themes) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_GE(t.words.size(), 12u);
    names.insert(t.name);
  }
  EXPECT_EQ(names.size(), themes.size());  // Unique names.
}

TEST(ThemesTest, MakeThemesPadsAndExtends) {
  const auto themes = MakeThemes(40, 20);
  ASSERT_EQ(themes.size(), 40u);
  for (const auto& t : themes) EXPECT_EQ(t.words.size(), 20u);
  // Procedural themes beyond the curated list get generated names.
  EXPECT_EQ(themes[35].name.substr(0, 5), "theme");
}

TEST(SyntheticTest, GeneratesReasonableCorpus) {
  text::SyntheticConfig config = Preset20NG(0.25);
  SyntheticDataset dataset = GenerateSynthetic(config);
  EXPECT_GT(dataset.train.num_docs(), 300);
  EXPECT_GT(dataset.test.num_docs(), 200);
  EXPECT_GT(dataset.train.vocab_size(), 300);
  EXPECT_TRUE(dataset.train.HasLabels());
  // Stop words were injected but must not survive preprocessing.
  EXPECT_EQ(dataset.train.vocab().GetId("the"), -1);
  // Theme words should survive.
  EXPECT_GE(dataset.train.vocab().GetId("space"), 0);
}

TEST(SyntheticTest, DeterministicForFixedSeed) {
  const SyntheticConfig config = Preset20NG(0.1);
  SyntheticDataset a = GenerateSynthetic(config);
  SyntheticDataset b = GenerateSynthetic(config);
  ASSERT_EQ(a.train.num_docs(), b.train.num_docs());
  EXPECT_EQ(a.train.doc(0).entries.size(), b.train.doc(0).entries.size());
  EXPECT_EQ(a.train.doc(0).label, b.train.doc(0).label);
}

TEST(SyntheticTest, LabelsMatchThemeVocabulary) {
  // Documents labeled with theme t should contain words of theme t more
  // often than words of other themes.
  SyntheticDataset dataset = GenerateSynthetic(Preset20NG(0.25));
  const auto themes = MakeThemes(30, 40);
  int matched = 0, checked = 0;
  for (int d = 0; d < std::min(200, dataset.train.num_docs()); ++d) {
    const Document& doc = dataset.train.doc(d);
    std::vector<int> theme_hits(themes.size(), 0);
    for (const auto& e : doc.entries) {
      const std::string& word = dataset.train.vocab().Word(e.word_id);
      for (size_t t = 0; t < themes.size(); ++t) {
        for (const auto& w : themes[t].words) {
          if (w == word) theme_hits[t] += e.count;
        }
      }
    }
    int best = 0;
    for (size_t t = 1; t < themes.size(); ++t) {
      if (theme_hits[t] > theme_hits[best]) best = static_cast<int>(t);
    }
    ++checked;
    if (best == doc.label) ++matched;
  }
  EXPECT_GT(static_cast<double>(matched) / checked, 0.7);
}

TEST(SyntheticTest, AllPresetsGenerate) {
  for (const auto& name : AllPresetNames()) {
    SyntheticDataset dataset =
        GenerateSynthetic(PresetByName(name, 0.05));
    EXPECT_GT(dataset.train.num_docs(), 0) << name;
    EXPECT_GT(dataset.train.vocab_size(), 100) << name;
  }
}

TEST(SyntheticTest, StatsAreConsistent) {
  SyntheticDataset dataset = GenerateSynthetic(Preset20NG(0.2));
  const CorpusStats stats = ComputeStats(dataset);
  EXPECT_EQ(stats.vocab_size, dataset.train.vocab_size());
  EXPECT_EQ(stats.train_samples, dataset.train.num_docs());
  EXPECT_EQ(stats.test_samples, dataset.test.num_docs());
  EXPECT_GT(stats.average_length, 10.0);
  EXPECT_LT(stats.average_length, 120.0);
}

TEST(SyntheticTest, ReferenceCorpusSharesVocabulary) {
  const SyntheticConfig config = Preset20NG(0.15);
  SyntheticDataset dataset = GenerateSynthetic(config);
  BowCorpus reference =
      GenerateReferenceCorpus(config, dataset.train.vocab());
  EXPECT_EQ(reference.vocab_size(), dataset.train.vocab_size());
  EXPECT_GT(reference.num_docs(), 100);
  // Different corpus: document counts differ from the training split.
  EXPECT_NE(reference.num_docs(), dataset.train.num_docs());
}

}  // namespace
}  // namespace text
}  // namespace contratopic
