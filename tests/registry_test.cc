// Hot-swap registry contract (DESIGN.md §16): RCU publication with zero
// serving gap, a validation gate that rejects bad candidates without
// unseating the incumbent (bitwise-identical serving afterwards), a
// probation watchdog that rolls back automatically when the new engine's
// breaker opens, and deterministic fault injection across the five
// registry.* sites -- every injected fault either retries to success or
// leaves serving bitwise-identical to pre-swap.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "embed/cooccurrence.h"
#include "embed/word_embeddings.h"
#include "eval/npmi.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"
#include "serve/registry.h"
#include "serve/resilience.h"
#include "tensor/tensor.h"
#include "text/corpus.h"
#include "text/synthetic.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/telemetry.h"

namespace contratopic {
namespace serve {
namespace {

using tensor::Tensor;
using topicmodel::TrainConfig;

TrainConfig TinyConfig(uint64_t seed) {
  TrainConfig config;
  config.num_topics = 8;
  config.epochs = 3;
  config.batch_size = 128;
  config.encoder_hidden = 32;
  config.encoder_layers = 1;
  config.seed = seed;
  return config;
}

// One dataset, an incumbent model (seed 7) and a distinct candidate
// model (seed 99) over the same vocabulary, each checkpointed, plus
// reference thetas -- built once for the whole file.
struct RegistryFixture {
  text::SyntheticDataset dataset;
  embed::WordEmbeddings embeddings;
  std::unique_ptr<topicmodel::TopicModel> incumbent;
  std::unique_ptr<topicmodel::TopicModel> candidate;
  Tensor incumbent_theta;  // in-memory InferTheta over the test set
  Tensor candidate_theta;
  std::string incumbent_ckpt;
  std::string candidate_ckpt;
  std::shared_ptr<const eval::NpmiMatrix> npmi;

  RegistryFixture()
      : dataset(text::GenerateSynthetic(text::Preset20NG(0.15))),
        embeddings(embed::WordEmbeddings::Train(dataset.train, [] {
          embed::EmbeddingConfig c;
          c.dimension = 24;
          return c;
        }())) {
    incumbent = core::CreateModel("etm", TinyConfig(7), embeddings);
    incumbent->Train(dataset.train);
    incumbent_theta = incumbent->InferTheta(dataset.test);
    // gtest_discover_tests runs every TEST in its own process; suffix the
    // shared fixture paths with the pid so parallel ctest workers do not
    // clobber each other's checkpoints mid-read.
    const std::string pid = std::to_string(::getpid());
    incumbent_ckpt =
        ::testing::TempDir() + "/registry_incumbent_" + pid + ".ckpt";
    CHECK(SaveCheckpoint(*incumbent, dataset.train.vocab(), incumbent_ckpt)
              .ok());

    candidate = core::CreateModel("etm", TinyConfig(99), embeddings);
    candidate->Train(dataset.train);
    candidate_theta = candidate->InferTheta(dataset.test);
    candidate_ckpt =
        ::testing::TempDir() + "/registry_candidate_" + pid + ".ckpt";
    CHECK(SaveCheckpoint(*candidate, dataset.train.vocab(), candidate_ckpt)
              .ok());

    embed::CooccurrenceCounts counts(
        static_cast<int>(dataset.train.vocab().size()));
    counts.AddPresence(dataset.train);
    npmi = std::make_shared<eval::NpmiMatrix>(
        eval::NpmiMatrix::FromCounts(counts));
  }
};

RegistryFixture& Shared() {
  static RegistryFixture* fixture = new RegistryFixture();
  return *fixture;
}

ModelRegistry::BowDoc ToBowDoc(const text::Document& doc) {
  ModelRegistry::BowDoc bow;
  bow.reserve(doc.entries.size());
  for (const auto& e : doc.entries) bow.emplace_back(e.word_id, e.count);
  return bow;
}

bool BitwiseEqual(const std::vector<float>& served, const Tensor& reference,
                  int64_t row) {
  return served.size() == static_cast<size_t>(reference.cols()) &&
         std::memcmp(served.data(), reference.row(row),
                     served.size() * sizeof(float)) == 0;
}

// Options with the interpretability gate disabled (the two fixture models
// are independently initialized, so their top words legitimately differ).
ModelRegistry::Options PermissiveOptions() {
  RegistryFixture& shared = Shared();
  ModelRegistry::Options options;
  options.gate.max_top_word_churn = 1.0;
  for (int i = 0; i < 4 && i < shared.dataset.test.num_docs(); ++i) {
    const text::Document& doc = shared.dataset.test.doc(i);
    if (!doc.entries.empty()) options.gate.probe_docs.push_back(ToBowDoc(doc));
  }
  options.swap_retry.max_attempts = 4;
  options.swap_retry.base_backoff_ms = 0.01;
  options.swap_retry.max_backoff_ms = 0.1;
  return options;
}

// Serves the first `n` non-empty test docs and asserts bitwise identity
// against `reference` (rows indexed by test-set position).
void ExpectServesBitwise(ModelRegistry& registry, const Tensor& reference,
                         int n) {
  RegistryFixture& shared = Shared();
  int checked = 0;
  for (int i = 0; i < shared.dataset.test.num_docs() && checked < n; ++i) {
    const text::Document& doc = shared.dataset.test.doc(i);
    if (doc.entries.empty()) continue;
    ModelRegistry::ThetaResult theta = registry.InferTheta(ToBowDoc(doc));
    ASSERT_TRUE(theta.ok()) << theta.status();
    EXPECT_TRUE(BitwiseEqual(*theta, reference, i)) << "doc " << i;
    ++checked;
  }
  ASSERT_GT(checked, 0);
}

TEST(RegistryTest, CreateServesInitialModelBitwise) {
  RegistryFixture& shared = Shared();
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt,
                                        PermissiveOptions());
  ASSERT_TRUE(registry.ok()) << registry.status();
  EXPECT_EQ((*registry)->current_version(), 1);
  ExpectServesBitwise(**registry, shared.incumbent_theta, 16);
  ModelRegistry::Stats stats = (*registry)->stats();
  EXPECT_EQ(stats.published, 0);  // the initial load is not a swap
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.requests, 16);
}

TEST(RegistryTest, PublishSwapsWithZeroGapAndOldEngineStillServes) {
  RegistryFixture& shared = Shared();
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt,
                                        PermissiveOptions());
  ASSERT_TRUE(registry.ok()) << registry.status();
  // Hold the incumbent engine as an in-flight reader would.
  std::shared_ptr<InferenceEngine> old_engine = (*registry)->current_engine();

  auto report = (*registry)->TryPublish(shared.candidate_ckpt);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->outcome, ModelRegistry::SwapOutcome::kPublished)
      << report->reject_reason;
  EXPECT_EQ(report->version, 2);
  EXPECT_EQ((*registry)->current_version(), 2);

  // New requests see the new model...
  ExpectServesBitwise(**registry, shared.candidate_theta, 8);
  // ...while a reader that entered before the swap still gets the old
  // model's answers, bitwise -- the zero-gap contract.
  const text::Document& doc = shared.dataset.test.doc(0);
  InferenceEngine::ThetaResult old_theta = old_engine->InferTheta(ToBowDoc(doc));
  ASSERT_TRUE(old_theta.ok()) << old_theta.status();
  EXPECT_TRUE(BitwiseEqual(*old_theta, shared.incumbent_theta, 0));
  EXPECT_EQ((*registry)->stats().published, 1);
}

TEST(RegistryTest, ChurnGateRejectsAndServingStaysBitwiseIdentical) {
  RegistryFixture& shared = Shared();
  ModelRegistry::Options options = PermissiveOptions();
  options.gate.max_top_word_churn = 0.0;  // any churn rejects
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt, options);
  ASSERT_TRUE(registry.ok()) << registry.status();

  auto report = (*registry)->TryPublish(shared.candidate_ckpt);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, ModelRegistry::SwapOutcome::kRejected);
  EXPECT_EQ(report->reject_reason.code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_GT(report->top_word_churn, 0.0);
  EXPECT_EQ((*registry)->current_version(), 1);
  ExpectServesBitwise(**registry, shared.incumbent_theta, 16);
  EXPECT_EQ((*registry)->stats().rejected, 1);
}

TEST(RegistryTest, CoherenceGateRejectsJunkTopics) {
  RegistryFixture& shared = Shared();
  // Tamper the candidate's top-word lists into mutually-unrelated words;
  // its mean NPMI coherence collapses while the incumbent's is intact.
  auto tampered = ReadCheckpoint(shared.candidate_ckpt);
  ASSERT_TRUE(tampered.ok()) << tampered.status();
  const int vocab = tampered->descriptor.vocab_size;
  for (size_t t = 0; t < tampered->top_words.size(); ++t) {
    for (size_t i = 0; i < tampered->top_words[t].size(); ++i) {
      tampered->top_words[t][i] =
          static_cast<int>((t * 31 + i * 97) % static_cast<size_t>(vocab));
    }
  }
  const std::string tampered_path =
      ::testing::TempDir() + "/registry_junk_topics.ckpt";
  ASSERT_TRUE(WriteCheckpoint(*tampered, tampered_path).ok());

  auto incumbent = ReadCheckpoint(shared.incumbent_ckpt);
  ASSERT_TRUE(incumbent.ok()) << incumbent.status();
  const double inc_coherence =
      MeanTopicCoherence(incumbent->top_words, *shared.npmi, 10);
  const double junk_coherence =
      MeanTopicCoherence(tampered->top_words, *shared.npmi, 10);
  ASSERT_GT(inc_coherence, junk_coherence)
      << "fixture assumption: trained topics cohere better than junk";

  ModelRegistry::Options options = PermissiveOptions();
  options.gate.max_coherence_drop = (inc_coherence - junk_coherence) / 2.0;
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt, options);
  ASSERT_TRUE(registry.ok()) << registry.status();
  (*registry)->SetCoherenceReference(shared.npmi);

  auto report = (*registry)->TryPublish(tampered_path);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, ModelRegistry::SwapOutcome::kRejected);
  EXPECT_EQ(report->reject_reason.code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_LT(report->candidate_coherence, report->incumbent_coherence);
  ExpectServesBitwise(**registry, shared.incumbent_theta, 8);
}

TEST(RegistryTest, NaNCandidateRejectedAsDataLoss) {
  RegistryFixture& shared = Shared();
  auto poisoned = ReadCheckpoint(shared.candidate_ckpt);
  ASSERT_TRUE(poisoned.ok()) << poisoned.status();
  ASSERT_FALSE(poisoned->tensors.empty());
  ASSERT_GT(poisoned->tensors[0].second.numel(), 0);
  poisoned->tensors[0].second.data()[0] =
      std::numeric_limits<float>::quiet_NaN();
  const std::string poisoned_path =
      ::testing::TempDir() + "/registry_nan.ckpt";
  ASSERT_TRUE(WriteCheckpoint(*poisoned, poisoned_path).ok());

  auto registry = ModelRegistry::Create(shared.incumbent_ckpt,
                                        PermissiveOptions());
  ASSERT_TRUE(registry.ok()) << registry.status();
  auto report = (*registry)->TryPublish(poisoned_path);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, ModelRegistry::SwapOutcome::kRejected);
  EXPECT_EQ(report->reject_reason.code(), util::StatusCode::kDataLoss);
  EXPECT_EQ((*registry)->current_version(), 1);
  ExpectServesBitwise(**registry, shared.incumbent_theta, 8);
}

TEST(RegistryTest, MismatchedArchitectureRejected) {
  RegistryFixture& shared = Shared();
  // A 12-topic model over the same vocabulary: structurally valid
  // checkpoint, incompatible serving contract.
  TrainConfig wide = TinyConfig(7);
  wide.num_topics = 12;
  wide.epochs = 1;
  auto other = core::CreateModel("etm", wide, shared.embeddings);
  other->Train(shared.dataset.train);
  const std::string other_path =
      ::testing::TempDir() + "/registry_widemodel.ckpt";
  ASSERT_TRUE(
      SaveCheckpoint(*other, shared.dataset.train.vocab(), other_path).ok());

  auto registry = ModelRegistry::Create(shared.incumbent_ckpt,
                                        PermissiveOptions());
  ASSERT_TRUE(registry.ok()) << registry.status();
  auto report = (*registry)->TryPublish(other_path);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, ModelRegistry::SwapOutcome::kRejected);
  EXPECT_EQ(report->reject_reason.code(),
            util::StatusCode::kFailedPrecondition);
  ExpectServesBitwise(**registry, shared.incumbent_theta, 8);
}

// --- Registry load-path corruption fuzzing ------------------------------
// A truncated or bit-flipped candidate file must be rejected at the gate
// and must never unseat the incumbent: after every corrupt publish
// attempt, serving is bitwise-identical to pre-attempt.

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CHECK(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CHECK(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  CHECK(out.good()) << path;
}

TEST(RegistryTest, CorruptCandidateNeverUnseatsIncumbent) {
  RegistryFixture& shared = Shared();
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt,
                                        PermissiveOptions());
  ASSERT_TRUE(registry.ok()) << registry.status();
  const std::string bytes = ReadFileBytes(shared.candidate_ckpt);
  ASSERT_GT(bytes.size(), 64u);
  const std::string corrupt_path =
      ::testing::TempDir() + "/registry_corrupt.ckpt";

  // Truncations at assorted depths, including mid-header.
  for (size_t keep : {size_t{0}, size_t{4}, size_t{23}, bytes.size() / 3,
                      bytes.size() - 1}) {
    WriteFileBytes(corrupt_path, bytes.substr(0, keep));
    auto report = (*registry)->TryPublish(corrupt_path);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->outcome, ModelRegistry::SwapOutcome::kRejected)
        << "truncated to " << keep << " bytes";
    EXPECT_FALSE(report->reject_reason.ok());
  }

  // Single bit flips sprinkled across the payload (the checksum must
  // catch every one before any field is trusted).
  for (size_t pos = 24; pos < bytes.size(); pos += bytes.size() / 17) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    WriteFileBytes(corrupt_path, flipped);
    auto report = (*registry)->TryPublish(corrupt_path);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->outcome, ModelRegistry::SwapOutcome::kRejected)
        << "bit flip at byte " << pos;
  }

  EXPECT_EQ((*registry)->current_version(), 1);
  EXPECT_EQ((*registry)->stats().published, 0);
  ExpectServesBitwise(**registry, shared.incumbent_theta, 16);
}

// --- Fault injection across the registry.* sites ------------------------

TEST(RegistryTest, TransientFaultsRetryToSuccessAtEverySite) {
  RegistryFixture& shared = Shared();
  for (const char* site : {"registry.load", "registry.validate",
                           "registry.swap", "registry.publish"}) {
    util::FaultInjector::Global().Reset();
    // The registry is created *before* arming so the injected failures
    // all land on the candidate swap, not the initial load.
    auto registry = ModelRegistry::Create(shared.incumbent_ckpt,
                                          PermissiveOptions());
    ASSERT_TRUE(registry.ok()) << site << ": " << registry.status();
    // Two injected failures against a budget of four attempts: the swap
    // must retry through them and land.
    util::FaultSpec spec;
    spec.every_nth = 1;
    spec.max_fires = 2;
    util::FaultInjector::Global().Arm(site, spec);
    auto report = (*registry)->TryPublish(shared.candidate_ckpt);
    ASSERT_TRUE(report.ok()) << site << ": " << report.status();
    EXPECT_EQ(report->outcome, ModelRegistry::SwapOutcome::kPublished)
        << site << ": " << report->reject_reason;
    EXPECT_GE(report->retries, 2) << site;
    EXPECT_EQ(util::FaultInjector::Global().fires(site), 2) << site;
    ExpectServesBitwise(**registry, shared.candidate_theta, 4);
  }
  util::FaultInjector::Global().Reset();
}

TEST(RegistryTest, ExhaustedRetriesRejectAndKeepIncumbent) {
  RegistryFixture& shared = Shared();
  util::FaultInjector::Global().Reset();
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt,
                                        PermissiveOptions());
  ASSERT_TRUE(registry.ok()) << registry.status();

  util::FaultSpec always;
  always.every_nth = 1;  // unlimited fires: the stage can never pass
  util::FaultInjector::Global().Arm("registry.publish", always);
  auto report = (*registry)->TryPublish(shared.candidate_ckpt);
  util::FaultInjector::Global().Reset();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->outcome, ModelRegistry::SwapOutcome::kRejected);
  EXPECT_EQ(report->reject_reason.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(report->retries, 3);  // max_attempts=4 -> 3 retries
  EXPECT_EQ((*registry)->current_version(), 1);
  ExpectServesBitwise(**registry, shared.incumbent_theta, 8);
}

// --- Probation watchdog + rollback --------------------------------------

TEST(RegistryTest, BreakerOpenDuringProbationRollsBackBitwise) {
  RegistryFixture& shared = Shared();
  util::FaultInjector::Global().Reset();
  ModelRegistry::Options options = PermissiveOptions();
  options.probation_requests = 32;
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt, options);
  ASSERT_TRUE(registry.ok()) << registry.status();

  auto report = (*registry)->TryPublish(shared.candidate_ckpt);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->outcome, ModelRegistry::SwapOutcome::kPublished)
      << report->reject_reason;
  ASSERT_EQ((*registry)->current_version(), 2);
  EXPECT_EQ((*registry)->probation_remaining(), 32);

  // The new model goes sick inside the probation window (three failures
  // open the default breaker).
  std::shared_ptr<InferenceEngine> sick = (*registry)->current_engine();
  for (int i = 0; i < 3; ++i) sick->breaker().RecordFailure();
  ASSERT_EQ(sick->health(), InferenceEngine::HealthState::kDegraded);

  // The next request triggers the watchdog *before* dispatch: it is
  // served by the restored incumbent, bitwise -- no request is lost.
  const text::Document& doc = shared.dataset.test.doc(0);
  ModelRegistry::ThetaResult theta = (*registry)->InferTheta(ToBowDoc(doc));
  ASSERT_TRUE(theta.ok()) << theta.status();
  EXPECT_TRUE(BitwiseEqual(*theta, shared.incumbent_theta, 0));
  EXPECT_EQ((*registry)->current_version(), 1);
  EXPECT_EQ((*registry)->stats().rolled_back, 1);
  // Post-rollback serving is bitwise-identical to pre-swap.
  ExpectServesBitwise(**registry, shared.incumbent_theta, 16);
}

TEST(RegistryTest, EstablishedSlotIsNotRolledBack) {
  RegistryFixture& shared = Shared();
  util::FaultInjector::Global().Reset();
  ModelRegistry::Options options = PermissiveOptions();
  options.probation_requests = 2;
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt, options);
  ASSERT_TRUE(registry.ok()) << registry.status();
  auto report = (*registry)->TryPublish(shared.candidate_ckpt);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->outcome, ModelRegistry::SwapOutcome::kPublished)
      << report->reject_reason;

  // Serve through the probation window: the slot is now established.
  ExpectServesBitwise(**registry, shared.candidate_theta, 2);
  EXPECT_EQ((*registry)->probation_remaining(), 0);

  std::shared_ptr<InferenceEngine> engine = (*registry)->current_engine();
  for (int i = 0; i < 3; ++i) engine->breaker().RecordFailure();
  const text::Document& doc = shared.dataset.test.doc(0);
  (void)(*registry)->InferTheta(ToBowDoc(doc));  // may fast-fail: degraded
  EXPECT_EQ((*registry)->current_version(), 2);
  EXPECT_EQ((*registry)->stats().rolled_back, 0);
}

TEST(RegistryTest, RollbackFaultSiteCannotPreventRollback) {
  RegistryFixture& shared = Shared();
  util::FaultInjector::Global().Reset();
  ModelRegistry::Options options = PermissiveOptions();
  options.probation_requests = 16;
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt, options);
  ASSERT_TRUE(registry.ok()) << registry.status();
  auto report = (*registry)->TryPublish(shared.candidate_ckpt);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->outcome, ModelRegistry::SwapOutcome::kPublished)
      << report->reject_reason;

  util::FaultSpec always;
  always.every_nth = 1;  // the rollback site fails on every consult
  util::FaultInjector::Global().Arm("registry.rollback", always);
  std::shared_ptr<InferenceEngine> sick = (*registry)->current_engine();
  for (int i = 0; i < 3; ++i) sick->breaker().RecordFailure();
  const text::Document& doc = shared.dataset.test.doc(0);
  ModelRegistry::ThetaResult theta = (*registry)->InferTheta(ToBowDoc(doc));
  util::FaultInjector::Global().Reset();
  ASSERT_TRUE(theta.ok()) << theta.status();
  EXPECT_TRUE(BitwiseEqual(*theta, shared.incumbent_theta, 0));
  EXPECT_EQ((*registry)->current_version(), 1) << "rollback must always win";
  EXPECT_EQ((*registry)->stats().rolled_back, 1);
}

// --- Telemetry ----------------------------------------------------------

TEST(RegistryTest, SwapOutcomesAreMirroredToTelemetry) {
  RegistryFixture& shared = Shared();
  util::FaultInjector::Global().Reset();
  util::RunTelemetry::Options topts;
  topts.deterministic = true;
  util::RunTelemetry telemetry(topts);
  telemetry.RecordRunStart("registry_test", {});

  ModelRegistry::Options options = PermissiveOptions();
  options.probation_requests = 8;
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt, options);
  ASSERT_TRUE(registry.ok()) << registry.status();
  (*registry)->SetTelemetry(&telemetry);

  // One published swap, one rejected (strict churn via a junk candidate
  // is overkill here: re-publish under a gate that rejects everything by
  // arming the publish site), one rollback.
  auto published = (*registry)->TryPublish(shared.candidate_ckpt);
  ASSERT_TRUE(published.ok());
  ASSERT_EQ(published->outcome, ModelRegistry::SwapOutcome::kPublished);

  util::FaultSpec always;
  always.every_nth = 1;
  util::FaultInjector::Global().Arm("registry.load", always);
  auto rejected = (*registry)->TryPublish(shared.candidate_ckpt);
  util::FaultInjector::Global().Reset();
  ASSERT_TRUE(rejected.ok());
  ASSERT_EQ(rejected->outcome, ModelRegistry::SwapOutcome::kRejected);

  std::shared_ptr<InferenceEngine> sick = (*registry)->current_engine();
  for (int i = 0; i < 3; ++i) sick->breaker().RecordFailure();
  const text::Document& doc = shared.dataset.test.doc(0);
  ASSERT_TRUE((*registry)->InferTheta(ToBowDoc(doc)).ok());

  int published_events = 0, rejected_events = 0, rolled_back_events = 0;
  for (const std::string& line : telemetry.lines()) {
    if (line.find("\"name\":\"swap.published\"") != std::string::npos) {
      ++published_events;
    }
    if (line.find("\"name\":\"swap.rejected\"") != std::string::npos) {
      ++rejected_events;
    }
    if (line.find("\"name\":\"swap.rolled_back\"") != std::string::npos) {
      ++rolled_back_events;
    }
  }
  EXPECT_EQ(published_events, 1);
  EXPECT_EQ(rejected_events, 1);
  EXPECT_EQ(rolled_back_events, 1);
}

// --- Contrastive zoo swaps (CLNTM / TSCTM) ------------------------------
// The model-zoo expansion must ride the hot-swap path like ETM: a fresh
// candidate of the same architecture publishes through the gate, serving
// flips to the candidate bitwise, and a corrupt candidate never unseats
// the published engine.

class ContrastiveSwapTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ContrastiveSwapTest, PublishGatesSwapAndServesBitwise) {
  RegistryFixture& shared = Shared();
  const std::string name = GetParam();
  const std::string pid = std::to_string(::getpid());

  auto incumbent = core::CreateModel(name, TinyConfig(7), shared.embeddings);
  incumbent->Train(shared.dataset.train);
  const Tensor incumbent_theta = incumbent->InferTheta(shared.dataset.test);
  const std::string inc_path =
      ::testing::TempDir() + "/swap_" + name + "_inc_" + pid + ".ckpt";
  ASSERT_TRUE(
      SaveCheckpoint(*incumbent, shared.dataset.train.vocab(), inc_path)
          .ok());

  auto candidate = core::CreateModel(name, TinyConfig(99), shared.embeddings);
  candidate->Train(shared.dataset.train);
  const Tensor candidate_theta = candidate->InferTheta(shared.dataset.test);
  const std::string cand_path =
      ::testing::TempDir() + "/swap_" + name + "_cand_" + pid + ".ckpt";
  ASSERT_TRUE(
      SaveCheckpoint(*candidate, shared.dataset.train.vocab(), cand_path)
          .ok());

  auto registry = ModelRegistry::Create(inc_path, PermissiveOptions());
  ASSERT_TRUE(registry.ok()) << name << ": " << registry.status();
  ExpectServesBitwise(**registry, incumbent_theta, 8);

  auto report = (*registry)->TryPublish(cand_path);
  ASSERT_TRUE(report.ok()) << name << ": " << report.status();
  ASSERT_EQ(report->outcome, ModelRegistry::SwapOutcome::kPublished)
      << name << ": " << report->reject_reason;
  EXPECT_EQ((*registry)->current_version(), 2);
  ExpectServesBitwise(**registry, candidate_theta, 8);

  // A truncated re-publish attempt is rejected and the published
  // candidate keeps serving bitwise.
  const std::string bytes = ReadFileBytes(inc_path);
  const std::string corrupt_path =
      ::testing::TempDir() + "/swap_" + name + "_corrupt_" + pid + ".ckpt";
  WriteFileBytes(corrupt_path, bytes.substr(0, bytes.size() / 2));
  auto rejected = (*registry)->TryPublish(corrupt_path);
  ASSERT_TRUE(rejected.ok()) << name << ": " << rejected.status();
  EXPECT_EQ(rejected->outcome, ModelRegistry::SwapOutcome::kRejected);
  EXPECT_EQ((*registry)->current_version(), 2);
  ExpectServesBitwise(**registry, candidate_theta, 8);
}

INSTANTIATE_TEST_SUITE_P(NewModels, ContrastiveSwapTest,
                         ::testing::Values("clntm", "tsctm"),
                         [](const ::testing::TestParamInfo<std::string>&
                                info) { return info.param; });

// --- Gate helper units --------------------------------------------------

TEST(RegistryGateTest, TopWordChurnComputesMeanMissingFraction) {
  // Topic 0 keeps 2 of 4 words (churn 0.5); topic 1 keeps all (0.0).
  std::vector<std::vector<int>> incumbent = {{1, 2, 3, 4}, {10, 11, 12, 13}};
  std::vector<std::vector<int>> candidate = {{3, 4, 5, 6}, {13, 12, 11, 10}};
  EXPECT_DOUBLE_EQ(TopWordChurn(incumbent, candidate, 4), 0.25);
  // k restricts the comparison to each list's head: the head-2 sets are
  // disjoint in both topics ({1,2} vs {3,4}; {10,11} vs {13,12}).
  EXPECT_DOUBLE_EQ(TopWordChurn(incumbent, candidate, 2), 1.0);
  EXPECT_DOUBLE_EQ(TopWordChurn({}, {}, 4), 0.0);
  // Identical lists never churn.
  EXPECT_DOUBLE_EQ(TopWordChurn(incumbent, incumbent, 4), 0.0);
}

TEST(RegistryGateTest, ScanCheckpointFiniteFlagsNaNAndInf) {
  RegistryFixture& shared = Shared();
  auto checkpoint = ReadCheckpoint(shared.incumbent_ckpt);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_TRUE(ScanCheckpointFinite(*checkpoint).ok());

  Checkpoint poisoned = *checkpoint;
  ASSERT_GT(poisoned.beta.numel(), 0);
  poisoned.beta.data()[poisoned.beta.numel() - 1] =
      std::numeric_limits<float>::infinity();
  util::Status status = ScanCheckpointFinite(poisoned);
  EXPECT_EQ(status.code(), util::StatusCode::kDataLoss);
}

// --- Fault-site registry audit ------------------------------------------
// After a full train+serve+swap+rollback run, every injection site the
// process exercised must be enumerable, armable, fire exactly per its
// FaultSpec, and be handled without aborting the process.

TEST(RegistryFaultAuditTest, EverySiteIsArmableAndFiresPerSpec) {
  RegistryFixture& shared = Shared();  // train + checkpoint.write + serve
  util::FaultInjector::Global().Reset();
  // ShouldFail's disarmed fast path skips registration entirely, so arm a
  // sentinel that never fires: every site consulted during the run below
  // then lands in RegisteredSites().
  util::FaultInjector::Global().Arm("audit.sentinel", util::FaultSpec{});

  // A full checkpoint-write + swap + serve + rollback pass so the whole
  // pipeline's sites register.
  {
    const std::string rewrite =
        ::testing::TempDir() + "/registry_audit_rewrite.ckpt";
    ASSERT_TRUE(SaveCheckpoint(*shared.incumbent,
                               shared.dataset.train.vocab(), rewrite)
                    .ok());
    ModelRegistry::Options options = PermissiveOptions();
    options.probation_requests = 8;
    auto registry = ModelRegistry::Create(shared.incumbent_ckpt, options);
    ASSERT_TRUE(registry.ok()) << registry.status();
    auto report = (*registry)->TryPublish(shared.candidate_ckpt);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->outcome, ModelRegistry::SwapOutcome::kPublished);
    std::shared_ptr<InferenceEngine> sick = (*registry)->current_engine();
    for (int i = 0; i < 3; ++i) sick->breaker().RecordFailure();
    const text::Document& doc = shared.dataset.test.doc(0);
    ASSERT_TRUE((*registry)->InferTheta(ToBowDoc(doc)).ok());
    ASSERT_EQ((*registry)->stats().rolled_back, 1);
  }

  std::vector<std::string> sites =
      util::FaultInjector::Global().RegisteredSites();
  for (const char* required :
       {"registry.load", "registry.validate", "registry.swap",
        "registry.publish", "registry.rollback", "serve.batch",
        "checkpoint.write"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), required), sites.end())
        << "site never exercised: " << required;
  }

  // Every registered site honors its FaultSpec exactly: every-3rd-call
  // with two fires max must fire on calls 3 and 6 and never again.
  for (const std::string& site : sites) {
    util::FaultSpec spec;
    spec.every_nth = 3;
    spec.max_fires = 2;
    util::FaultInjector::Global().Arm(site, spec);
    int fired = 0;
    for (int call = 1; call <= 12; ++call) {
      const bool fire = util::FaultInjector::Global().ShouldFail(site);
      EXPECT_EQ(fire, (call == 3 || call == 6)) << site << " call " << call;
      if (fire) ++fired;
    }
    EXPECT_EQ(fired, 2) << site;
    EXPECT_EQ(util::FaultInjector::Global().fires(site), 2) << site;
    util::FaultInjector::Global().Disarm(site);
  }
  util::FaultInjector::Global().Reset();
}

// With chaos armed probabilistically across every registry site (but
// fires bounded below the retry budget), a burst of swaps must all
// publish -- injected faults only ever cost retries.

TEST(RegistryFaultAuditTest, ProbabilisticChaosNeverCostsASwap) {
  RegistryFixture& shared = Shared();
  util::FaultInjector::Global().Reset();
  util::FaultInjector::Global().SetSeed(20260808);
  for (const char* site : {"registry.load", "registry.validate",
                           "registry.swap", "registry.publish"}) {
    util::FaultSpec spec;
    spec.probability = 0.4;
    spec.max_fires = 3;  // < max_attempts=4: retries can always win
    util::FaultInjector::Global().Arm(site, spec);
  }
  auto registry = ModelRegistry::Create(shared.incumbent_ckpt,
                                        PermissiveOptions());
  ASSERT_TRUE(registry.ok()) << registry.status();
  const std::string paths[2] = {shared.candidate_ckpt, shared.incumbent_ckpt};
  int total_retries = 0;
  for (int swap = 0; swap < 6; ++swap) {
    auto report = (*registry)->TryPublish(paths[swap % 2]);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->outcome, ModelRegistry::SwapOutcome::kPublished)
        << "swap " << swap << ": " << report->reject_reason;
    total_retries += report->retries;
  }
  util::FaultInjector::Global().Reset();
  EXPECT_EQ((*registry)->current_version(), 7);
  EXPECT_GT(total_retries, 0) << "chaos seed never fired; pick another";
  ExpectServesBitwise(**registry, shared.incumbent_theta, 8);
}

}  // namespace
}  // namespace serve
}  // namespace contratopic
