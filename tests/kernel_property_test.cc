// Algebraic and special-value properties of the tensor kernels, valid on
// every backend (tensor/backend.h). The differential suite proves the
// backends agree with each other; this suite proves the shared canonical
// semantics are the *right* ones: softmax rows are distributions,
// logsumexp is shift-invariant, matmul respects identities, and the IEEE
// edge cases (NaN, infinities, denormals, empty shapes) have defined,
// documented outcomes instead of UB.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/backend.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace contratopic {
namespace tensor {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// Run the body once per supported backend so every property holds on every
// table, not just the startup one.
class KernelPropertyTest
    : public ::testing::TestWithParam<KernelBackendKind> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, KernelPropertyTest,
    ::testing::ValuesIn(SupportedBackends()),
    [](const ::testing::TestParamInfo<KernelBackendKind>& info) {
      return std::string(KernelBackendName(info.param));
    });

TEST_P(KernelPropertyTest, SoftmaxRowsAreDistributions) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(11);
  const Tensor x = Tensor::RandNormal(40, 130, rng, 0.0f, 4.0f);
  const Tensor s = SoftmaxRows(x);
  for (int64_t r = 0; r < s.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < s.cols(); ++c) {
      ASSERT_GE(s.at(r, c), 0.0f);
      sum += s.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5) << "row " << r;
  }
}

TEST_P(KernelPropertyTest, SoftmaxShiftInvariance) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(12);
  const Tensor x = Tensor::RandNormal(20, 64, rng, 0.0f, 2.0f);
  Tensor shifted = x;
  shifted.Apply([](float v) { return v + 7.5f; });
  const Tensor a = SoftmaxRows(x);
  const Tensor b = SoftmaxRows(shifted);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-6f);
  }
}

TEST_P(KernelPropertyTest, LogSumExpShiftInvariance) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(13);
  const Tensor x = Tensor::RandNormal(30, 80, rng, 0.0f, 2.0f);
  Tensor shifted = x;
  const float kShift = -23.0f;
  shifted.Apply([kShift](float v) { return v + kShift; });
  Tensor lse_x(30, 1), lse_shifted(30, 1);
  LogSumExpRows(x, nullptr, &lse_x);
  LogSumExpRows(shifted, nullptr, &lse_shifted);
  for (int64_t r = 0; r < 30; ++r) {
    EXPECT_NEAR(lse_shifted.at(r, 0), lse_x.at(r, 0) + kShift, 1e-4f)
        << "row " << r;
  }
}

TEST_P(KernelPropertyTest, LogSoftmaxMatchesLogOfSoftmax) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(14);
  const Tensor x = Tensor::RandNormal(15, 50, rng, 0.0f, 3.0f);
  const Tensor s = SoftmaxRows(x);
  Tensor ls = x;
  LogSoftmaxRowsInPlace(&ls);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-4f);
  }
}

TEST_P(KernelPropertyTest, MatMulIdentityIsBitwiseExact) {
  // A @ I multiplies each product lane by 1 or 0 and the canonical tree
  // adds exact zeros, so the result must be A to the bit.
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(15);
  const Tensor a = Tensor::RandNormal(37, 53, rng, 0.0f, 1.0f);
  const Tensor c = MatMulNew(a, false, Tensor::Identity(53), false);
  ASSERT_TRUE(c.same_shape(a));
  for (int64_t i = 0; i < a.numel(); ++i) {
    uint32_t ua, uc;
    std::memcpy(&ua, a.data() + i, 4);
    std::memcpy(&uc, c.data() + i, 4);
    ASSERT_EQ(ua, uc) << "flat index " << i;
  }
}

TEST_P(KernelPropertyTest, MatMulAssociativityWithinTolerance) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(16);
  const Tensor a = Tensor::RandNormal(21, 33, rng, 0.0f, 1.0f);
  const Tensor b = Tensor::RandNormal(33, 27, rng, 0.0f, 1.0f);
  const Tensor c = Tensor::RandNormal(27, 19, rng, 0.0f, 1.0f);
  const Tensor left = MatMulNew(MatMulNew(a, false, b, false), false, c,
                                false);
  const Tensor right = MatMulNew(a, false, MatMulNew(b, false, c, false),
                                 false);
  ASSERT_TRUE(left.same_shape(right));
  for (int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 2e-3f);
  }
}

TEST_P(KernelPropertyTest, MatMulZeroInnerDimScalesExisting) {
  // Inner dimension 0: every dot is empty (= 0), so C = beta * C.
  ScopedKernelBackend scoped(GetParam());
  const Tensor a(4, 0);
  const Tensor b(0, 5);
  Tensor c = Tensor::Full(4, 5, 2.0f);
  MatMul(a, false, b, false, &c, 1.0f, 0.5f);
  for (int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_FLOAT_EQ(c.data()[i], 1.0f);
  }
}

// Regression: the pre-backend softmax read row[0] unconditionally, which
// was out-of-bounds on zero-width rows. Zero-size shapes must be no-ops.
TEST_P(KernelPropertyTest, ZeroSizeShapesAreSafe) {
  ScopedKernelBackend scoped(GetParam());
  Tensor zero_cols(3, 0);
  SoftmaxRowsInPlace(&zero_cols);
  LogSoftmaxRowsInPlace(&zero_cols);
  Tensor zero_rows(0, 4);
  SoftmaxRowsInPlace(&zero_rows);
  const Tensor rs = RowSum(zero_cols);
  ASSERT_EQ(rs.rows(), 3);
  for (int64_t r = 0; r < 3; ++r) EXPECT_FLOAT_EQ(rs.at(r, 0), 0.0f);
  const Tensor cs = ColSum(zero_rows);
  ASSERT_EQ(cs.cols(), 4);
  for (int64_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(cs.at(0, c), 0.0f);
}

// Regression: a row that is entirely -inf (every token masked upstream)
// must produce the uniform distribution, not NaN from exp(-inf - -inf).
TEST_P(KernelPropertyTest, SoftmaxAllNegInfRowIsUniform) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x = Tensor::Full(2, 8, -kInf);
  x.at(1, 3) = 0.0f;  // second row is an ordinary one-hot-ish row
  SoftmaxRowsInPlace(&x);
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_FLOAT_EQ(x.at(0, c), 1.0f / 8.0f) << "col " << c;
  }
  EXPECT_FLOAT_EQ(x.at(1, 3), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 0), 0.0f);
}

TEST_P(KernelPropertyTest, LogSoftmaxAllNegInfRowIsUniformLog) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x = Tensor::Full(1, 16, -kInf);
  LogSoftmaxRowsInPlace(&x);
  for (int64_t c = 0; c < 16; ++c) {
    EXPECT_NEAR(x.at(0, c), -std::log(16.0f), 1e-6f) << "col " << c;
  }
}

TEST_P(KernelPropertyTest, LogSumExpEmptyMaskRowYieldsSentinel) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(17);
  const Tensor x = Tensor::RandNormal(3, 10, rng, 0.0f, 1.0f);
  Tensor mask = Tensor::Full(3, 10, 1.0f);
  for (int64_t c = 0; c < 10; ++c) mask.at(1, c) = 0.0f;
  Tensor out(3, 1);
  LogSumExpRows(x, &mask, &out);
  EXPECT_FLOAT_EQ(out.at(1, 0), -1e30f);
  EXPECT_GT(out.at(0, 0), -1e29f);
  EXPECT_GT(out.at(2, 0), -1e29f);
}

TEST_P(KernelPropertyTest, SingleElementRows) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x(3, 1);
  x.at(0, 0) = -4.25f;
  x.at(1, 0) = 1234.5f;
  x.at(2, 0) = 0.0f;
  Tensor s = x;
  SoftmaxRowsInPlace(&s);
  for (int64_t r = 0; r < 3; ++r) EXPECT_FLOAT_EQ(s.at(r, 0), 1.0f);
  Tensor lse(3, 1);
  LogSumExpRows(x, nullptr, &lse);
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(lse.at(r, 0), x.at(r, 0)) << "row " << r;
  }
}

TEST_P(KernelPropertyTest, NanInRowPoisonsOnlyThatSoftmaxRow) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(18);
  Tensor x = Tensor::RandNormal(3, 12, rng, 0.0f, 1.0f);
  x.at(1, 5) = std::numeric_limits<float>::quiet_NaN();
  SoftmaxRowsInPlace(&x);
  for (int64_t c = 0; c < 12; ++c) {
    EXPECT_TRUE(std::isnan(x.at(1, c))) << "col " << c;
  }
  double sum0 = 0.0, sum2 = 0.0;
  for (int64_t c = 0; c < 12; ++c) {
    sum0 += x.at(0, c);
    sum2 += x.at(2, c);
  }
  EXPECT_NEAR(sum0, 1.0, 1e-5);
  EXPECT_NEAR(sum2, 1.0, 1e-5);
}

TEST_P(KernelPropertyTest, DenormalInputsStayFinite) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x = Tensor::Full(2, 9, std::numeric_limits<float>::denorm_min());
  Tensor s = x;
  SoftmaxRowsInPlace(&s);
  for (int64_t i = 0; i < s.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(s.data()[i]));
    EXPECT_NEAR(s.data()[i], 1.0f / 9.0f, 1e-6f);
  }
  const Tensor norm = RowL2Normalized(x);
  for (int64_t i = 0; i < norm.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(norm.data()[i]));
  }
}

// ---------------------------------------------------------------------------
// CanonicalExpf accuracy: the shared polynomial must track std::exp to a
// few ULP across the whole non-saturating range, and honor the documented
// saturation/special-value semantics exactly.
// ---------------------------------------------------------------------------

int64_t UlpDistance(float a, float b) {
  // Both operands positive finite here; the bit patterns of positive
  // floats are ordered, so the ULP distance is the bit distance.
  int32_t ia, ib;
  std::memcpy(&ia, &a, 4);
  std::memcpy(&ib, &b, 4);
  return std::llabs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib));
}

TEST(CanonicalExpfTest, TracksLibmWithinFourUlp) {
  int64_t worst = 0;
  for (float x = -87.0f; x <= 88.0f; x += 0.00311f) {
    const float got = CanonicalExpf(x);
    const float want = std::exp(x);
    ASSERT_GT(got, 0.0f) << "x=" << x;
    const int64_t ulp = UlpDistance(got, want);
    worst = std::max(worst, ulp);
    ASSERT_LE(ulp, 4) << "x=" << x << " got=" << got << " want=" << want;
  }
  // The polynomial should really be ~2 ULP; record the observed worst case
  // so a regression is visible in the test log.
  RecordProperty("worst_ulp", static_cast<int>(worst));
}

// ---------------------------------------------------------------------------
// Mixed-precision codecs (tensor/quant.h): round-trip error bounds,
// saturation, monotonicity, and the IEEE edge cases, on every backend.
// ---------------------------------------------------------------------------

TEST_P(KernelPropertyTest, Bf16RoundTripWithinHalfStep) {
  // Encode rounds to an 8-bit significand; decode is exact. Half an ulp
  // of an 8-bit significand is 2^-8 relative to the value's magnitude.
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(41);
  Tensor x(16, 64);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, 10.0));
  }
  const Tensor back = TensorFromBf16(Bf16FromTensor(x));
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float v = x.data()[i];
    ASSERT_LE(std::abs(back.data()[i] - v), std::abs(v) * (1.0f / 256.0f))
        << "flat index " << i << " value " << v;
  }
}

TEST_P(KernelPropertyTest, Bf16RoundTripIsIdempotent) {
  // A decoded bf16 value re-encodes to the same code: the second trip
  // must be lossless.
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(42);
  Tensor x(8, 32);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, 3.0));
  }
  const Bf16Matrix once = Bf16FromTensor(x);
  const Bf16Matrix twice = Bf16FromTensor(TensorFromBf16(once));
  EXPECT_EQ(once.data, twice.data);
}

TEST_P(KernelPropertyTest, Bf16SpecialValues) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x(1, 8);
  x.data()[0] = kInf;
  x.data()[1] = -kInf;
  x.data()[2] = std::numeric_limits<float>::quiet_NaN();
  x.data()[3] = -0.0f;
  x.data()[4] = 0.0f;
  x.data()[5] = std::numeric_limits<float>::denorm_min();
  x.data()[6] = std::numeric_limits<float>::max();  // rounds up, must not
  x.data()[7] = 1.0f;                               // fabricate a NaN
  const Tensor back = TensorFromBf16(Bf16FromTensor(x));
  EXPECT_EQ(back.data()[0], kInf);
  EXPECT_EQ(back.data()[1], -kInf);
  EXPECT_TRUE(std::isnan(back.data()[2]));  // NaN stays NaN, never inf
  EXPECT_EQ(back.data()[3], 0.0f);
  EXPECT_TRUE(std::signbit(back.data()[3]));  // sign of -0 survives
  EXPECT_EQ(back.data()[4], 0.0f);
  EXPECT_FALSE(std::signbit(back.data()[4]));
  EXPECT_GE(back.data()[5], 0.0f);  // denormal stays non-negative
  EXPECT_EQ(back.data()[6], kInf);  // max float rounds up to inf (RNE)
  EXPECT_EQ(back.data()[7], 1.0f);  // powers of two are exact
}

TEST_P(KernelPropertyTest, Int8RoundTripWithinHalfStep) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(43);
  Tensor x(12, 96);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, 2.0));
  }
  const Int8Matrix q = Int8FromTensor(x);
  const Tensor back = TensorFromInt8(q);
  for (int64_t r = 0; r < x.rows(); ++r) {
    const float scale = q.scales[static_cast<size_t>(r)];
    ASSERT_GT(scale, 0.0f) << "row " << r;
    for (int64_t c = 0; c < x.cols(); ++c) {
      // Half a quantization step, plus a whisker for the scale's own
      // rounding (absmax/127 then 127/absmax are not exact inverses).
      ASSERT_LE(std::abs(back.at(r, c) - x.at(r, c)),
                scale * 0.5f * 1.001f)
          << "(" << r << "," << c << ")";
    }
  }
}

TEST_P(KernelPropertyTest, Int8SaturatesAtPlusMinus127) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x(1, 8);
  const float vals[8] = {-8.0f, -4.0f, -1.0f, 0.0f,
                         1.0f,  4.0f,  8.0f,  2.0f};
  std::memcpy(x.data(), vals, sizeof(vals));
  const Int8Matrix q = Int8FromTensor(x);
  // absmax = 8 -> codes live in [-127, 127] with the extremes hit
  // exactly; the scheme is symmetric so -128 is never produced.
  EXPECT_EQ(q.data[0], -127);
  EXPECT_EQ(q.data[6], 127);
  EXPECT_EQ(q.data[3], 0);
  for (int8_t code : q.data) {
    EXPECT_GE(code, -127);
    EXPECT_LE(code, 127);
  }
}

TEST_P(KernelPropertyTest, Int8QuantizationIsMonotonicPerRow) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(44);
  Tensor x(1, 200);
  for (int64_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(rng.Normal(0.0, 5.0));
  }
  std::sort(x.data(), x.data() + x.numel());
  const Int8Matrix q = Int8FromTensor(x);
  for (int64_t i = 1; i < x.numel(); ++i) {
    ASSERT_LE(q.data[static_cast<size_t>(i - 1)],
              q.data[static_cast<size_t>(i)])
        << "index " << i;
  }
}

TEST_P(KernelPropertyTest, Int8ZeroAndEmptyRows) {
  ScopedKernelBackend scoped(GetParam());
  // All-zero row: scale 0, all-zero codes, exact round trip.
  Tensor zeros(2, 16);
  for (int64_t i = 0; i < zeros.numel(); ++i) zeros.data()[i] = 0.0f;
  zeros.at(1, 3) = 5.0f;  // second row is ordinary
  const Int8Matrix q = Int8FromTensor(zeros);
  EXPECT_EQ(q.scales[0], 0.0f);
  for (int64_t c = 0; c < 16; ++c) EXPECT_EQ(q.data[static_cast<size_t>(c)], 0);
  const Tensor back = TensorFromInt8(q);
  for (int64_t c = 0; c < 16; ++c) EXPECT_EQ(back.at(0, c), 0.0f);
  EXPECT_EQ(back.at(1, 3), 5.0f);
  // Zero-width rows: empty data, one (zero) scale per row, no reads.
  const Tensor empty(3, 0);
  const Int8Matrix eq = Int8FromTensor(empty);
  EXPECT_EQ(eq.data.size(), 0u);
  ASSERT_EQ(eq.scales.size(), 3u);
  for (float s : eq.scales) EXPECT_EQ(s, 0.0f);
  const Tensor eback = TensorFromInt8(eq);
  EXPECT_EQ(eback.rows(), 3);
  EXPECT_EQ(eback.cols(), 0);
  // Zero-width bf16 round trip is likewise a no-op.
  const Tensor bback = TensorFromBf16(Bf16FromTensor(empty));
  EXPECT_EQ(bback.rows(), 3);
  EXPECT_EQ(bback.cols(), 0);
}

TEST_P(KernelPropertyTest, Int8NonFiniteRowsAreDeterministic) {
  ScopedKernelBackend scoped(GetParam());
  // A NaN-poisoned row has no meaningful absmax; the documented outcome
  // is the all-zero row (scale 0), not garbage codes.
  Tensor x(1, 8);
  for (int64_t i = 0; i < 8; ++i) x.data()[i] = static_cast<float>(i);
  x.data()[2] = std::numeric_limits<float>::quiet_NaN();
  const float absmax = ActiveKernels().row_absmax(x.data(), 8);
  if (!(absmax > 0.0f)) {
    // NaN-propagating absmax: the conversion takes the zero-row path.
    const Int8Matrix q = Int8FromTensor(x);
    EXPECT_EQ(q.scales[0], 0.0f);
  } else {
    // Max-ignores-NaN absmax: NaN elements quantize to the documented
    // clamp floor (-127), everything else normally.
    const Int8Matrix q = Int8FromTensor(x);
    EXPECT_EQ(q.data[2], -127);
    EXPECT_EQ(q.data[0], 0);
  }
  // The direct quantizer's NaN route is pinned either way: NaN converts
  // like integer-overflow (INT32_MIN) and clamps to -127.
  float src[4] = {0.0f, std::numeric_limits<float>::quiet_NaN(), 1.0f,
                  -2.0f};
  int8_t dst[4];
  ActiveKernels().quantize_i8(src, dst, 4, 1.0f);
  EXPECT_EQ(dst[0], 0);
  EXPECT_EQ(dst[1], -127);
  EXPECT_EQ(dst[2], 1);
  EXPECT_EQ(dst[3], -2);
}

TEST_P(KernelPropertyTest, RowAbsMaxProperties) {
  ScopedKernelBackend scoped(GetParam());
  const KernelTable& kt = ActiveKernels();
  // Empty row -> 0 (drives the zero-row path, never a read).
  EXPECT_EQ(kt.row_absmax(nullptr, 0), 0.0f);
  // Signed zeros -> +0 (so `absmax > 0` correctly stays false).
  float zeros[9] = {-0.0f, 0.0f, -0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f,
                    -0.0f};
  const float z = kt.row_absmax(zeros, 9);
  EXPECT_EQ(z, 0.0f);
  EXPECT_FALSE(std::signbit(z));
  // Mixed signs -> the max magnitude, wherever it sits (head, vector
  // body, or scalar tail).
  float vals[11] = {1.0f, -3.0f, 2.0f,  -0.5f, 0.25f, 3.5f,
                    0.0f, -1.0f, -6.5f, 2.0f,  4.0f};
  EXPECT_EQ(kt.row_absmax(vals, 11), 6.5f);
  EXPECT_EQ(kt.row_absmax(vals, 8), 3.5f);
  // Infinity dominates.
  vals[4] = -kInf;
  EXPECT_EQ(kt.row_absmax(vals, 11), kInf);
}

TEST_P(KernelPropertyTest, QuantizedDotsMatchExactIntegerMath) {
  // dot_i8 is exact integer arithmetic; any backend disagreeing with a
  // plain int64 loop is broken outright, not merely off by rounding.
  ScopedKernelBackend scoped(GetParam());
  const KernelTable& kt = ActiveKernels();
  util::Rng rng(45);
  for (int64_t n : {0, 1, 7, 16, 33, 100, 1024}) {
    std::vector<int8_t> a(static_cast<size_t>(n)), b(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] =
          static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
      b[static_cast<size_t>(i)] =
          static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
    }
    int64_t want = 0;
    for (int64_t i = 0; i < n; ++i) {
      want += static_cast<int64_t>(a[static_cast<size_t>(i)]) *
              static_cast<int64_t>(b[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(kt.dot_i8(a.data(), b.data(), n), want) << "n=" << n;
  }
  // Worst-case magnitudes cannot overflow the accumulator: 40960 products
  // of (-127)*(-127) stress the periodic i32 -> i64 drain.
  const int64_t n = 40960;
  std::vector<int8_t> a(static_cast<size_t>(n), -127);
  std::vector<int8_t> b(static_cast<size_t>(n), -127);
  EXPECT_EQ(kt.dot_i8(a.data(), b.data(), n), n * 127 * 127);
}

TEST_P(KernelPropertyTest, UnsignedQuantizedDotsMatchSignedOnSharedDomain) {
  // dot_i8u / dot4_i8u are only defined for a in [0, 127]; on that domain
  // they must agree bit for bit with dot_i8 / dot4_i8 and the int64 loop.
  ScopedKernelBackend scoped(GetParam());
  const KernelTable& kt = ActiveKernels();
  util::Rng rng(46);
  for (int64_t n : {0, 1, 7, 16, 33, 100, 1024}) {
    std::vector<int8_t> a(static_cast<size_t>(n));
    std::vector<std::vector<int8_t>> b(4);
    for (auto& row : b) row.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] =
          static_cast<int8_t>(rng.UniformInt(128));  // [0, 127]
      for (auto& row : b) {
        row[static_cast<size_t>(i)] =
            static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
      }
    }
    int64_t u4[4], s4[4];
    kt.dot4_i8u(a.data(), b[0].data(), b[1].data(), b[2].data(), b[3].data(),
                n, u4);
    kt.dot4_i8(a.data(), b[0].data(), b[1].data(), b[2].data(), b[3].data(),
               n, s4);
    for (int j = 0; j < 4; ++j) {
      int64_t want = 0;
      for (int64_t i = 0; i < n; ++i) {
        want += static_cast<int64_t>(a[static_cast<size_t>(i)]) *
                static_cast<int64_t>(b[static_cast<size_t>(j)]
                                      [static_cast<size_t>(i)]);
      }
      EXPECT_EQ(u4[j], want) << "n=" << n << " j=" << j;
      EXPECT_EQ(s4[j], want) << "n=" << n << " j=" << j;
      EXPECT_EQ(kt.dot_i8u(a.data(), b[static_cast<size_t>(j)].data(), n),
                want)
          << "n=" << n << " j=" << j;
    }
  }
  // Drain stress at the unsigned domain's worst case, 127 * (-127) per
  // product.
  const int64_t n = 40960;
  std::vector<int8_t> a(static_cast<size_t>(n), 127);
  std::vector<int8_t> b(static_cast<size_t>(n), -127);
  EXPECT_EQ(kt.dot_i8u(a.data(), b.data(), n), -n * 127 * 127);
}

TEST_P(KernelPropertyTest, QuantizeReportsNonNegativeCodes) {
  // quantize_i8's return is the unsigned-dot dispatch signal: true iff
  // every emitted code is >= 0, across vector body and scalar tail alike.
  ScopedKernelBackend scoped(GetParam());
  const KernelTable& kt = ActiveKernels();
  util::Rng rng(47);
  for (int64_t n : {1, 7, 16, 33, 100, 129}) {
    std::vector<float> src(static_cast<size_t>(n));
    std::vector<int8_t> dst(static_cast<size_t>(n));
    // Non-negative inputs -> non-negative codes -> true.
    for (auto& v : src) v = static_cast<float>(rng.Uniform());
    EXPECT_TRUE(kt.quantize_i8(src.data(), dst.data(), n, 100.0f))
        << "n=" << n;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_GE(dst[static_cast<size_t>(i)], 0) << "n=" << n << " i=" << i;
    }
    // One negative element anywhere flips the verdict (place it at the
    // end so the scalar tail is exercised too).
    src[static_cast<size_t>(n - 1)] = -1.0f;
    EXPECT_FALSE(kt.quantize_i8(src.data(), dst.data(), n, 100.0f))
        << "n=" << n;
    // A negative value that rounds to code 0 keeps the codes
    // non-negative, so the verdict stays true.
    src[static_cast<size_t>(n - 1)] = -1e-9f;
    EXPECT_TRUE(kt.quantize_i8(src.data(), dst.data(), n, 100.0f))
        << "n=" << n;
    EXPECT_EQ(dst[static_cast<size_t>(n - 1)], 0);
  }
  // NaN quantizes to -127, so it must report false.
  float nan_src[3] = {1.0f, std::numeric_limits<float>::quiet_NaN(), 2.0f};
  int8_t nan_dst[3];
  EXPECT_FALSE(kt.quantize_i8(nan_src, nan_dst, 3, 1.0f));
  // Empty span: vacuously non-negative.
  EXPECT_TRUE(kt.quantize_i8(nullptr, nullptr, 0, 1.0f));
}

TEST(CanonicalExpfTest, SaturationAndSpecials) {
  EXPECT_FLOAT_EQ(CanonicalExpf(0.0f), 1.0f);
  EXPECT_FLOAT_EQ(CanonicalExpf(-0.0f), 1.0f);
  EXPECT_EQ(CanonicalExpf(kInf), kInf);
  EXPECT_EQ(CanonicalExpf(200.0f), kInf);
  EXPECT_EQ(CanonicalExpf(-kInf), 0.0f);
  EXPECT_EQ(CanonicalExpf(-200.0f), 0.0f);
  EXPECT_TRUE(std::isnan(
      CanonicalExpf(std::numeric_limits<float>::quiet_NaN())));
  // Exactly at the documented thresholds: still finite below, saturated
  // above.
  EXPECT_TRUE(std::isfinite(CanonicalExpf(88.3762626647949f)));
  EXPECT_GT(CanonicalExpf(-87.3365478515625f), 0.0f);
}

}  // namespace
}  // namespace tensor
}  // namespace contratopic
