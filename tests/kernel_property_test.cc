// Algebraic and special-value properties of the tensor kernels, valid on
// every backend (tensor/backend.h). The differential suite proves the
// backends agree with each other; this suite proves the shared canonical
// semantics are the *right* ones: softmax rows are distributions,
// logsumexp is shift-invariant, matmul respects identities, and the IEEE
// edge cases (NaN, infinities, denormals, empty shapes) have defined,
// documented outcomes instead of UB.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/backend.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace contratopic {
namespace tensor {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// Run the body once per supported backend so every property holds on every
// table, not just the startup one.
class KernelPropertyTest
    : public ::testing::TestWithParam<KernelBackendKind> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, KernelPropertyTest,
    ::testing::ValuesIn(SupportedBackends()),
    [](const ::testing::TestParamInfo<KernelBackendKind>& info) {
      return std::string(KernelBackendName(info.param));
    });

TEST_P(KernelPropertyTest, SoftmaxRowsAreDistributions) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(11);
  const Tensor x = Tensor::RandNormal(40, 130, rng, 0.0f, 4.0f);
  const Tensor s = SoftmaxRows(x);
  for (int64_t r = 0; r < s.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < s.cols(); ++c) {
      ASSERT_GE(s.at(r, c), 0.0f);
      sum += s.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5) << "row " << r;
  }
}

TEST_P(KernelPropertyTest, SoftmaxShiftInvariance) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(12);
  const Tensor x = Tensor::RandNormal(20, 64, rng, 0.0f, 2.0f);
  Tensor shifted = x;
  shifted.Apply([](float v) { return v + 7.5f; });
  const Tensor a = SoftmaxRows(x);
  const Tensor b = SoftmaxRows(shifted);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-6f);
  }
}

TEST_P(KernelPropertyTest, LogSumExpShiftInvariance) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(13);
  const Tensor x = Tensor::RandNormal(30, 80, rng, 0.0f, 2.0f);
  Tensor shifted = x;
  const float kShift = -23.0f;
  shifted.Apply([kShift](float v) { return v + kShift; });
  Tensor lse_x(30, 1), lse_shifted(30, 1);
  LogSumExpRows(x, nullptr, &lse_x);
  LogSumExpRows(shifted, nullptr, &lse_shifted);
  for (int64_t r = 0; r < 30; ++r) {
    EXPECT_NEAR(lse_shifted.at(r, 0), lse_x.at(r, 0) + kShift, 1e-4f)
        << "row " << r;
  }
}

TEST_P(KernelPropertyTest, LogSoftmaxMatchesLogOfSoftmax) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(14);
  const Tensor x = Tensor::RandNormal(15, 50, rng, 0.0f, 3.0f);
  const Tensor s = SoftmaxRows(x);
  Tensor ls = x;
  LogSoftmaxRowsInPlace(&ls);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-4f);
  }
}

TEST_P(KernelPropertyTest, MatMulIdentityIsBitwiseExact) {
  // A @ I multiplies each product lane by 1 or 0 and the canonical tree
  // adds exact zeros, so the result must be A to the bit.
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(15);
  const Tensor a = Tensor::RandNormal(37, 53, rng, 0.0f, 1.0f);
  const Tensor c = MatMulNew(a, false, Tensor::Identity(53), false);
  ASSERT_TRUE(c.same_shape(a));
  for (int64_t i = 0; i < a.numel(); ++i) {
    uint32_t ua, uc;
    std::memcpy(&ua, a.data() + i, 4);
    std::memcpy(&uc, c.data() + i, 4);
    ASSERT_EQ(ua, uc) << "flat index " << i;
  }
}

TEST_P(KernelPropertyTest, MatMulAssociativityWithinTolerance) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(16);
  const Tensor a = Tensor::RandNormal(21, 33, rng, 0.0f, 1.0f);
  const Tensor b = Tensor::RandNormal(33, 27, rng, 0.0f, 1.0f);
  const Tensor c = Tensor::RandNormal(27, 19, rng, 0.0f, 1.0f);
  const Tensor left = MatMulNew(MatMulNew(a, false, b, false), false, c,
                                false);
  const Tensor right = MatMulNew(a, false, MatMulNew(b, false, c, false),
                                 false);
  ASSERT_TRUE(left.same_shape(right));
  for (int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 2e-3f);
  }
}

TEST_P(KernelPropertyTest, MatMulZeroInnerDimScalesExisting) {
  // Inner dimension 0: every dot is empty (= 0), so C = beta * C.
  ScopedKernelBackend scoped(GetParam());
  const Tensor a(4, 0);
  const Tensor b(0, 5);
  Tensor c = Tensor::Full(4, 5, 2.0f);
  MatMul(a, false, b, false, &c, 1.0f, 0.5f);
  for (int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_FLOAT_EQ(c.data()[i], 1.0f);
  }
}

// Regression: the pre-backend softmax read row[0] unconditionally, which
// was out-of-bounds on zero-width rows. Zero-size shapes must be no-ops.
TEST_P(KernelPropertyTest, ZeroSizeShapesAreSafe) {
  ScopedKernelBackend scoped(GetParam());
  Tensor zero_cols(3, 0);
  SoftmaxRowsInPlace(&zero_cols);
  LogSoftmaxRowsInPlace(&zero_cols);
  Tensor zero_rows(0, 4);
  SoftmaxRowsInPlace(&zero_rows);
  const Tensor rs = RowSum(zero_cols);
  ASSERT_EQ(rs.rows(), 3);
  for (int64_t r = 0; r < 3; ++r) EXPECT_FLOAT_EQ(rs.at(r, 0), 0.0f);
  const Tensor cs = ColSum(zero_rows);
  ASSERT_EQ(cs.cols(), 4);
  for (int64_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(cs.at(0, c), 0.0f);
}

// Regression: a row that is entirely -inf (every token masked upstream)
// must produce the uniform distribution, not NaN from exp(-inf - -inf).
TEST_P(KernelPropertyTest, SoftmaxAllNegInfRowIsUniform) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x = Tensor::Full(2, 8, -kInf);
  x.at(1, 3) = 0.0f;  // second row is an ordinary one-hot-ish row
  SoftmaxRowsInPlace(&x);
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_FLOAT_EQ(x.at(0, c), 1.0f / 8.0f) << "col " << c;
  }
  EXPECT_FLOAT_EQ(x.at(1, 3), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 0), 0.0f);
}

TEST_P(KernelPropertyTest, LogSoftmaxAllNegInfRowIsUniformLog) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x = Tensor::Full(1, 16, -kInf);
  LogSoftmaxRowsInPlace(&x);
  for (int64_t c = 0; c < 16; ++c) {
    EXPECT_NEAR(x.at(0, c), -std::log(16.0f), 1e-6f) << "col " << c;
  }
}

TEST_P(KernelPropertyTest, LogSumExpEmptyMaskRowYieldsSentinel) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(17);
  const Tensor x = Tensor::RandNormal(3, 10, rng, 0.0f, 1.0f);
  Tensor mask = Tensor::Full(3, 10, 1.0f);
  for (int64_t c = 0; c < 10; ++c) mask.at(1, c) = 0.0f;
  Tensor out(3, 1);
  LogSumExpRows(x, &mask, &out);
  EXPECT_FLOAT_EQ(out.at(1, 0), -1e30f);
  EXPECT_GT(out.at(0, 0), -1e29f);
  EXPECT_GT(out.at(2, 0), -1e29f);
}

TEST_P(KernelPropertyTest, SingleElementRows) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x(3, 1);
  x.at(0, 0) = -4.25f;
  x.at(1, 0) = 1234.5f;
  x.at(2, 0) = 0.0f;
  Tensor s = x;
  SoftmaxRowsInPlace(&s);
  for (int64_t r = 0; r < 3; ++r) EXPECT_FLOAT_EQ(s.at(r, 0), 1.0f);
  Tensor lse(3, 1);
  LogSumExpRows(x, nullptr, &lse);
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(lse.at(r, 0), x.at(r, 0)) << "row " << r;
  }
}

TEST_P(KernelPropertyTest, NanInRowPoisonsOnlyThatSoftmaxRow) {
  ScopedKernelBackend scoped(GetParam());
  util::Rng rng(18);
  Tensor x = Tensor::RandNormal(3, 12, rng, 0.0f, 1.0f);
  x.at(1, 5) = std::numeric_limits<float>::quiet_NaN();
  SoftmaxRowsInPlace(&x);
  for (int64_t c = 0; c < 12; ++c) {
    EXPECT_TRUE(std::isnan(x.at(1, c))) << "col " << c;
  }
  double sum0 = 0.0, sum2 = 0.0;
  for (int64_t c = 0; c < 12; ++c) {
    sum0 += x.at(0, c);
    sum2 += x.at(2, c);
  }
  EXPECT_NEAR(sum0, 1.0, 1e-5);
  EXPECT_NEAR(sum2, 1.0, 1e-5);
}

TEST_P(KernelPropertyTest, DenormalInputsStayFinite) {
  ScopedKernelBackend scoped(GetParam());
  Tensor x = Tensor::Full(2, 9, std::numeric_limits<float>::denorm_min());
  Tensor s = x;
  SoftmaxRowsInPlace(&s);
  for (int64_t i = 0; i < s.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(s.data()[i]));
    EXPECT_NEAR(s.data()[i], 1.0f / 9.0f, 1e-6f);
  }
  const Tensor norm = RowL2Normalized(x);
  for (int64_t i = 0; i < norm.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(norm.data()[i]));
  }
}

// ---------------------------------------------------------------------------
// CanonicalExpf accuracy: the shared polynomial must track std::exp to a
// few ULP across the whole non-saturating range, and honor the documented
// saturation/special-value semantics exactly.
// ---------------------------------------------------------------------------

int64_t UlpDistance(float a, float b) {
  // Both operands positive finite here; the bit patterns of positive
  // floats are ordered, so the ULP distance is the bit distance.
  int32_t ia, ib;
  std::memcpy(&ia, &a, 4);
  std::memcpy(&ib, &b, 4);
  return std::llabs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib));
}

TEST(CanonicalExpfTest, TracksLibmWithinFourUlp) {
  int64_t worst = 0;
  for (float x = -87.0f; x <= 88.0f; x += 0.00311f) {
    const float got = CanonicalExpf(x);
    const float want = std::exp(x);
    ASSERT_GT(got, 0.0f) << "x=" << x;
    const int64_t ulp = UlpDistance(got, want);
    worst = std::max(worst, ulp);
    ASSERT_LE(ulp, 4) << "x=" << x << " got=" << got << " want=" << want;
  }
  // The polynomial should really be ~2 ULP; record the observed worst case
  // so a regression is visible in the test log.
  RecordProperty("worst_ulp", static_cast<int>(worst));
}

TEST(CanonicalExpfTest, SaturationAndSpecials) {
  EXPECT_FLOAT_EQ(CanonicalExpf(0.0f), 1.0f);
  EXPECT_FLOAT_EQ(CanonicalExpf(-0.0f), 1.0f);
  EXPECT_EQ(CanonicalExpf(kInf), kInf);
  EXPECT_EQ(CanonicalExpf(200.0f), kInf);
  EXPECT_EQ(CanonicalExpf(-kInf), 0.0f);
  EXPECT_EQ(CanonicalExpf(-200.0f), 0.0f);
  EXPECT_TRUE(std::isnan(
      CanonicalExpf(std::numeric_limits<float>::quiet_NaN())));
  // Exactly at the documented thresholds: still finite below, saturated
  // above.
  EXPECT_TRUE(std::isfinite(CanonicalExpf(88.3762626647949f)));
  EXPECT_GT(CanonicalExpf(-87.3365478515625f), 0.0f);
}

}  // namespace
}  // namespace tensor
}  // namespace contratopic
