// Property-based sweeps over the library's core invariants, plus failure
// injection for the I/O paths. Complements the per-module unit tests with
// TEST_P coverage across shapes, seeds, temperatures, and dataset presets.

#include <cmath>
#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/contrastive_loss.h"
#include "core/subset_sampler.h"
#include "embed/word_embeddings.h"
#include "eval/clustering.h"
#include "eval/intrusion.h"
#include "eval/npmi.h"
#include "nn/optimizer.h"
#include "tensor/kernels.h"
#include "text/preprocess.h"
#include "util/serialize.h"
#include "util/table_writer.h"
#include "text/synthetic.h"

namespace contratopic {
namespace {

using tensor::Tensor;

// ---------------------------------------------------------------------------
// MatMul: random shapes vs. a naive reference.
// ---------------------------------------------------------------------------

class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  const Tensor a = Tensor::RandNormal(m, k, rng);
  const Tensor b = Tensor::RandNormal(k, n, rng);
  Tensor expected(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      }
      expected.at(i, j) = static_cast<float>(acc);
    }
  }
  EXPECT_TRUE(
      tensor::AllClose(tensor::MatMulNew(a, false, b, false), expected, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(5, 1, 5), std::make_tuple(13, 17, 19),
                      std::make_tuple(64, 3, 64), std::make_tuple(2, 100, 2),
                      std::make_tuple(33, 65, 9)));

// ---------------------------------------------------------------------------
// Softmax invariants over random seeds.
// ---------------------------------------------------------------------------

class SoftmaxSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxSeedTest, RowsSumToOneAndOrderPreserved) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  const Tensor x = Tensor::RandNormal(6, 20, rng, 0.0f, 4.0f);
  const Tensor y = tensor::SoftmaxRows(x);
  for (int64_t r = 0; r < y.rows(); ++r) {
    double sum = 0.0;
    int64_t argmax_x = 0;
    int64_t argmax_y = 0;
    for (int64_t c = 0; c < y.cols(); ++c) {
      sum += y.at(r, c);
      if (x.at(r, c) > x.at(r, argmax_x)) argmax_x = c;
      if (y.at(r, c) > y.at(r, argmax_y)) argmax_y = c;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_EQ(argmax_x, argmax_y);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxSeedTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Subset sampler invariants over (v, tau).
// ---------------------------------------------------------------------------

class SamplerSweepTest
    : public ::testing::TestWithParam<std::tuple<int, float>> {};

TEST_P(SamplerSweepTest, StepAndVHotInvariantsHold) {
  const auto [v, tau] = GetParam();
  util::Rng rng(123);
  const Tensor logits = Tensor::RandNormal(5, 30, rng, 0.0f, 2.0f);
  util::Rng sample_rng(7);
  const core::SubsetSample sample = core::SampleTopVWithoutReplacement(
      autodiff::Var::Constant(logits), v, tau, sample_rng);
  ASSERT_EQ(sample.steps.size(), static_cast<size_t>(v));
  for (const auto& step : sample.steps) {
    for (int64_t r = 0; r < step.rows(); ++r) {
      double sum = 0.0;
      for (int64_t c = 0; c < step.cols(); ++c) {
        ASSERT_GE(step.value().at(r, c), 0.0f);
        sum += step.value().at(r, c);
      }
      EXPECT_NEAR(sum, 1.0, 1e-3);
    }
  }
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 30; ++c) sum += sample.v_hot.value().at(r, c);
    EXPECT_NEAR(sum, static_cast<double>(v), 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VTau, SamplerSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 10, 20),
                       ::testing::Values(0.1f, 0.5f, 1.0f)));

// ---------------------------------------------------------------------------
// Contrastive loss: coherent-and-distinct always beats junk, across block
// structures.
// ---------------------------------------------------------------------------

class ContrastBlockTest : public ::testing::TestWithParam<int> {};

TEST_P(ContrastBlockTest, StructuredBeatsShuffled) {
  const int block = GetParam();
  const int vocab = 4 * block;
  Tensor kernel(vocab, vocab);
  for (int i = 0; i < vocab; ++i) {
    for (int j = 0; j < vocab; ++j) {
      kernel.at(i, j) = (i / block == j / block) ? (i == j ? 1.0f : 0.7f)
                                                 : 0.0f;
    }
  }
  const int v = std::min(3, block);
  auto hard = [&](const std::vector<std::vector<int>>& words) {
    std::vector<autodiff::Var> steps;
    for (int j = 0; j < v; ++j) {
      Tensor step(2, vocab);
      for (int t = 0; t < 2; ++t) step.at(t, words[t][j]) = 1.0f;
      steps.push_back(autodiff::Var::Constant(step));
    }
    return core::TopicContrastiveLoss(steps, kernel).value().scalar();
  };
  std::vector<std::vector<int>> good(2), junk(2);
  for (int j = 0; j < v; ++j) {
    good[0].push_back(j);              // topic 0: block 0
    good[1].push_back(block + j);      // topic 1: block 1
    junk[0].push_back(j * block);      // one word from each block
    junk[1].push_back(j * block + 1);
  }
  EXPECT_LT(hard(good), hard(junk)) << "block=" << block;
}

INSTANTIATE_TEST_SUITE_P(Blocks, ContrastBlockTest,
                         ::testing::Values(3, 4, 6, 8, 12));

// ---------------------------------------------------------------------------
// Dataset presets: preprocessing and NPMI invariants hold on all of them.
// ---------------------------------------------------------------------------

class PresetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PresetTest, PreprocessingInvariants) {
  const text::SyntheticConfig config =
      text::PresetByName(GetParam(), 0.08);
  const text::SyntheticDataset dataset = text::GenerateSynthetic(config);
  const text::BowCorpus& corpus = dataset.train;
  // No stop words, document-frequency bounds respected, no empty docs.
  const auto df = corpus.DocumentFrequencies();
  const int max_df = static_cast<int>(
      config.preprocess.max_doc_frequency_fraction *
      (dataset.train.num_docs() + dataset.test.num_docs()));
  for (int w = 0; w < corpus.vocab_size(); ++w) {
    EXPECT_FALSE(text::IsStopWord(corpus.vocab().Word(w)));
    EXPECT_LE(df[w], max_df);
  }
  for (const auto& doc : corpus.docs()) {
    EXPECT_GE(doc.TotalTokens(), config.preprocess.min_doc_length);
    EXPECT_GE(doc.label, 0);
    EXPECT_LT(doc.label, config.num_themes);
  }
}

TEST_P(PresetTest, NpmiIsSymmetricAndBounded) {
  const text::SyntheticDataset dataset =
      text::GenerateSynthetic(text::PresetByName(GetParam(), 0.06));
  const eval::NpmiMatrix npmi = eval::NpmiMatrix::Compute(dataset.train);
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const int i = static_cast<int>(rng.UniformInt(npmi.vocab_size()));
    const int j = static_cast<int>(rng.UniformInt(npmi.vocab_size()));
    EXPECT_FLOAT_EQ(npmi.value(i, j), npmi.value(j, i));
    EXPECT_GE(npmi.value(i, j), -1.0f - 1e-6f);
    EXPECT_LE(npmi.value(i, j), 1.0f + 1e-6f);
  }
}

TEST_P(PresetTest, ThemeWordsOutscoreCrossThemePairsOnNpmi) {
  const text::SyntheticDataset dataset =
      text::GenerateSynthetic(text::PresetByName(GetParam(), 0.12));
  const eval::NpmiMatrix npmi = eval::NpmiMatrix::Compute(dataset.train);
  const auto& vocab = dataset.train.vocab();
  // Same-theme pair vs cross-theme pair, averaged over curated themes.
  const auto& themes = text::CuratedThemes();
  double within = 0.0, across = 0.0;
  int count = 0;
  for (size_t t = 0; t + 1 < 10; ++t) {
    const int a = vocab.GetId(themes[t].words[0]);
    const int b = vocab.GetId(themes[t].words[1]);
    const int c = vocab.GetId(themes[t + 1].words[0]);
    if (a < 0 || b < 0 || c < 0) continue;
    within += npmi.value(a, b);
    across += npmi.value(a, c);
    ++count;
  }
  ASSERT_GT(count, 3);
  EXPECT_GT(within / count, across / count + 0.2);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest,
                         ::testing::Values("20ng-sim", "yahoo-sim",
                                           "nytimes-sim"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Clustering score ranges over random inputs.
// ---------------------------------------------------------------------------

class ClusteringRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusteringRangeTest, ScoresStayInValidRanges) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  const Tensor points = Tensor::RandUniform(50, 4, rng);
  std::vector<int> labels(50);
  for (int i = 0; i < 50; ++i) labels[i] = static_cast<int>(rng.UniformInt(5));
  const eval::KMeansResult km = eval::KMeans(points, 5, rng);
  const double purity = eval::Purity(km.assignments, labels);
  const double nmi =
      eval::NormalizedMutualInformation(km.assignments, labels);
  EXPECT_GE(purity, 1.0 / 5 - 1e-9);
  EXPECT_LE(purity, 1.0 + 1e-9);
  EXPECT_GE(nmi, -1e-9);
  EXPECT_LE(nmi, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringRangeTest, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Optimizers converge across seeds.
// ---------------------------------------------------------------------------

class AdamSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(AdamSeedTest, QuadraticConverges) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  autodiff::Var w =
      autodiff::Var::Leaf(Tensor::RandNormal(1, 4, rng, 0.0f, 3.0f), true);
  nn::Adam adam(0.1f);
  for (int step = 0; step < 300; ++step) {
    autodiff::Var loss = autodiff::SumAll(autodiff::Square(w));
    autodiff::Backward(loss);
    adam.Step({{"w", w}});
    w.ZeroGrad();
  }
  EXPECT_LT(w.value().MaxAbs(), 0.02f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdamSeedTest, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Failure injection.
// ---------------------------------------------------------------------------

TEST(FailureInjectionTest, EmbeddingsLoadRejectsTruncatedFile) {
  const std::string path = ::testing::TempDir() + "/ct_truncated.bin";
  {
    util::BinaryWriter writer(path);
    writer.WriteU64(100);  // Claims 100 rows, then ends.
    ASSERT_TRUE(writer.Close().ok());
  }
  const auto result = embed::WordEmbeddings::Load(path);
  EXPECT_FALSE(result.ok());
}

TEST(FailureInjectionTest, EmbeddingsLoadRejectsMissingFile) {
  EXPECT_FALSE(embed::WordEmbeddings::Load("/no/such/file.bin").ok());
}

TEST(FailureInjectionTest, NormalizedBatchHandlesEmptyDocument) {
  text::Vocabulary vocab;
  vocab.AddWord("w");
  std::vector<text::Document> docs(2);
  docs[0].entries = {{0, 3}};
  // docs[1] empty.
  const text::BowCorpus corpus(vocab, docs);
  const Tensor batch = corpus.NormalizedBatch({0, 1});
  EXPECT_NEAR(batch.at(0, 0), 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(batch.at(1, 0), 0.0f);  // Empty row stays zero, no NaN.
}

TEST(FailureInjectionTest, IntrusionWithTinyTopicCountStillWorks) {
  util::Rng rng(3);
  text::SyntheticDataset data =
      text::GenerateSynthetic(text::Preset20NG(0.06));
  const eval::NpmiMatrix npmi = eval::NpmiMatrix::Compute(data.train);
  const Tensor beta =
      tensor::SoftmaxRows(Tensor::RandNormal(2, data.train.vocab_size(), rng));
  eval::IntrusionConfig config;
  const auto questions = eval::GenerateIntrusionQuestions(beta, npmi, config);
  // With K=2 every topic is "selected": the generator falls back to other
  // topics for intruders instead of returning nothing.
  EXPECT_FALSE(questions.empty());
}

TEST(FailureInjectionTest, TableWriterRejectsUnwritablePath) {
  util::TableWriter table({"a"});
  table.AddRow({"1"});
  EXPECT_FALSE(table.WriteTsv("/proc/definitely/not/writable.tsv").ok());
}

TEST(FailureInjectionTest, KMeansOnIdenticalPointsDoesNotCrash) {
  util::Rng rng(9);
  const Tensor points = Tensor::Ones(20, 3);
  const eval::KMeansResult result = eval::KMeans(points, 4, rng);
  EXPECT_EQ(result.assignments.size(), 20u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

}  // namespace
}  // namespace contratopic
