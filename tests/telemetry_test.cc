// Observability-layer lock-in (DESIGN.md §9): MetricsRegistry instrument
// semantics, TraceSpan nesting/aggregation, JSONL rendering, snapshot
// round-trips through util::serialize, and the headline guarantee that a
// deterministic telemetry stream is bitwise-identical at --threads=1 and
// --threads=4 for a full ContraTopic training run.

#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/contratopic.h"
#include "embed/word_embeddings.h"
#include "text/synthetic.h"
#include "topicmodel/neural_base.h"
#include "util/metrics.h"
#include "util/serialize.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace contratopic {
namespace {

using util::MetricsRegistry;
using util::MetricsSnapshot;
using util::RunTelemetry;
using util::Tracer;
using util::TraceSpan;

// ---------------------------------------------------------------------------
// MetricsRegistry instruments.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterIncrementAndReset) {
  MetricsRegistry registry;
  util::Counter& c = registry.counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  // Same name returns the same instrument.
  EXPECT_EQ(&registry.counter("test.counter"), &c);
  registry.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  util::Gauge& g = registry.gauge("test.gauge");
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_EQ(g.value(), -2.25);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  util::Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(0.5);    // bucket 0 (< 1)
  hist.Observe(5.0);    // bucket 1 (< 10)
  hist.Observe(50.0);   // bucket 2 (< 100)
  hist.Observe(500.0);  // overflow bucket (>= 100)
  const util::HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.sum, 555.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
}

TEST(MetricsTest, HistogramPercentileInterpolates) {
  util::Histogram hist({10.0, 20.0});
  // Ten observations spread uniformly through [10, 20): every percentile
  // lands in the middle bucket and interpolates between its edges.
  for (int i = 0; i < 10; ++i) hist.Observe(10.0 + i);
  const util::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.counts[1], 10);
  const double p50 = snap.Percentile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  // Monotone in p, clamped to the observed range.
  EXPECT_LE(snap.Percentile(0.1), snap.Percentile(0.9));
  EXPECT_GE(snap.Percentile(0.0), snap.min);
  EXPECT_LE(snap.Percentile(1.0), snap.max);
  // The first bucket's lower edge is min.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), snap.min);
  // Empty histogram reports 0.
  EXPECT_DOUBLE_EQ(util::Histogram({1.0}).Snapshot().Percentile(0.5), 0.0);
}

TEST(MetricsTest, SnapshotRoundTripsThroughSerialize) {
  MetricsRegistry registry;
  registry.counter("a.count").Increment(7);
  registry.gauge("b.gauge").Set(3.14159);
  registry.histogram("c.hist", {1.0, 2.0}).Observe(1.5);
  const MetricsSnapshot snap = registry.Snapshot();

  const std::string path = ::testing::TempDir() + "/ct_metrics_snapshot.bin";
  {
    util::BinaryWriter writer(path);
    ASSERT_TRUE(writer.ok());
    snap.Save(&writer);
    ASSERT_TRUE(writer.Close().ok());
  }
  util::BinaryReader reader(path);
  ASSERT_TRUE(reader.ok());
  MetricsSnapshot loaded;
  ASSERT_TRUE(MetricsSnapshot::Load(&reader, &loaded).ok());
  EXPECT_TRUE(loaded == snap);
}

// ---------------------------------------------------------------------------
// TraceSpan nesting and aggregation.
// ---------------------------------------------------------------------------

TEST(TraceTest, SpansNestIntoSlashPaths) {
  Tracer::Global().Reset();
  {
    TraceSpan outer("outer");
    EXPECT_EQ(outer.path(), "outer");
    for (int i = 0; i < 3; ++i) {
      TraceSpan inner("inner");
      EXPECT_EQ(inner.path(), "outer/inner");
      TraceSpan leaf("leaf");
      EXPECT_EQ(leaf.path(), "outer/inner/leaf");
    }
  }
  const util::TraceAggregate agg = Tracer::Global().Snapshot();
  ASSERT_TRUE(agg.spans.count("outer"));
  ASSERT_TRUE(agg.spans.count("outer/inner"));
  ASSERT_TRUE(agg.spans.count("outer/inner/leaf"));
  EXPECT_EQ(agg.spans.at("outer").count, 1);
  EXPECT_EQ(agg.spans.at("outer/inner").count, 3);
  EXPECT_EQ(agg.spans.at("outer/inner/leaf").count, 3);
  EXPECT_GE(agg.spans.at("outer").total_seconds,
            agg.spans.at("outer/inner").max_seconds);

  Tracer::Global().Reset();
  EXPECT_TRUE(Tracer::Global().Snapshot().spans.empty());
}

TEST(TraceTest, SiblingSpansDoNotNest) {
  Tracer::Global().Reset();
  {
    TraceSpan a("sib_a");
  }
  {
    TraceSpan b("sib_b");
  }
  const util::TraceAggregate agg = Tracer::Global().Snapshot();
  EXPECT_TRUE(agg.spans.count("sib_a"));
  EXPECT_TRUE(agg.spans.count("sib_b"));
  EXPECT_FALSE(agg.spans.count("sib_a/sib_b"));
  Tracer::Global().Reset();
}

// ---------------------------------------------------------------------------
// JSON rendering.
// ---------------------------------------------------------------------------

TEST(TelemetryTest, JsonEscapingAndDoubles) {
  std::string out;
  util::AppendJsonEscaped("a\"b\\c\nd", &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd");

  std::string num;
  util::AppendJsonDouble(0.1, &num);
  // %.17g round-trips exactly.
  EXPECT_EQ(std::stod(num), 0.1);

  std::string nan_out;
  util::AppendJsonDouble(std::numeric_limits<double>::quiet_NaN(), &nan_out);
  EXPECT_EQ(nan_out, "null");
  std::string inf_out;
  util::AppendJsonDouble(std::numeric_limits<double>::infinity(), &inf_out);
  EXPECT_EQ(inf_out, "null");
}

TEST(TelemetryTest, JsonObjectBuildsInInsertionOrder) {
  util::JsonObject obj;
  obj.Put("s", "x\"y");
  obj.Put("i", int64_t{7});
  obj.Put("b", true);
  obj.PutRaw("o", "{\"k\":1}");
  EXPECT_EQ(obj.Build(), "{\"s\":\"x\\\"y\",\"i\":7,\"b\":true,\"o\":{\"k\":1}}");
}

// ---------------------------------------------------------------------------
// RunTelemetry record stream (in-memory sink).
// ---------------------------------------------------------------------------

TEST(TelemetryTest, RecordStreamShapeAndManifest) {
  MetricsRegistry::Global().Reset();
  Tracer::Global().Reset();
  MetricsRegistry::Global().counter("t.records").Increment(3);

  RunTelemetry::Options options;  // empty path: in-memory only
  RunTelemetry telemetry(options);
  telemetry.RecordRunStart("unit", {{"dataset", "synthetic"}});
  util::EpochTelemetry epoch;
  epoch.epoch = 1;
  epoch.total_epochs = 2;
  epoch.loss = 12.5;
  epoch.loss_components = {{"l_con", -0.25}};
  epoch.metrics = {{"npmi", 0.125}};
  epoch.seconds = 0.5;
  telemetry.RecordEpoch(epoch);
  telemetry.RecordStage("train", 1.25, {{"final_loss", 12.5}});
  EXPECT_FALSE(telemetry.manifest_written());
  telemetry.RecordManifest({{"ok", 1.0}});
  EXPECT_TRUE(telemetry.manifest_written());
  EXPECT_TRUE(telemetry.Flush().ok());

  const std::vector<std::string>& lines = telemetry.lines();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"type\":\"run_start\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"dataset\":\"synthetic\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"epoch\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"loss\":12.5"), std::string::npos);
  EXPECT_NE(lines[1].find("\"l_con\":-0.25"), std::string::npos);
  EXPECT_NE(lines[1].find("\"npmi\":0.125"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seconds\":0.5"), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"stage\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"name\":\"train\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"type\":\"manifest\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"t.records\":3"), std::string::npos);
}

TEST(TelemetryTest, DeterministicModeOmitsEnvironmentalFields) {
  RunTelemetry::Options options;
  options.deterministic = true;
  RunTelemetry telemetry(options);
  util::EpochTelemetry epoch;
  epoch.epoch = 1;
  epoch.total_epochs = 1;
  epoch.loss = 1.0;
  epoch.seconds = 123.0;
  epoch.stage_seconds = {{"forward", 60.0}};
  telemetry.RecordEpoch(epoch);
  telemetry.RecordStage("train", 456.0);
  telemetry.RecordManifest({});
  for (const std::string& line : telemetry.lines()) {
    EXPECT_EQ(line.find("seconds"), std::string::npos) << line;
    EXPECT_EQ(line.find("peak_rss_bytes"), std::string::npos) << line;
  }
}

TEST(TelemetryTest, FileSinkWritesJsonl) {
  const std::string path = ::testing::TempDir() + "/ct_telemetry_test.jsonl";
  {
    RunTelemetry::Options options;
    options.path = path;
    RunTelemetry telemetry(options);
    telemetry.RecordRunStart("file", {});
    telemetry.RecordManifest({});
    EXPECT_TRUE(telemetry.Flush().ok());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, 2);
}

// ---------------------------------------------------------------------------
// The headline guarantee: deterministic telemetry from a real training
// run is bitwise-identical at 1 and 4 threads.
// ---------------------------------------------------------------------------

std::vector<std::string> TrainWithTelemetry(int threads) {
  util::ThreadPool::SetGlobalNumThreads(threads);
  MetricsRegistry::Global().Reset();
  Tracer::Global().Reset();

  const text::SyntheticConfig config = text::Preset20NG(0.1);
  text::SyntheticDataset dataset = text::GenerateSynthetic(config);
  const text::BowCorpus reference =
      text::GenerateReferenceCorpus(config, dataset.train.vocab());
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(reference, [] {
        embed::EmbeddingConfig c;
        c.dimension = 16;
        return c;
      }());

  topicmodel::TrainConfig tc;
  tc.num_topics = 8;
  tc.epochs = 2;
  tc.batch_size = 128;
  tc.encoder_hidden = 32;
  tc.encoder_layers = 1;
  auto model = core::MakeContraTopicEtm(tc, embeddings);

  RunTelemetry::Options options;
  options.deterministic = true;
  RunTelemetry telemetry(options);
  telemetry.RecordRunStart("determinism", {{"dataset", config.name}});
  model->SetTelemetry(&telemetry);
  const topicmodel::TrainStats stats = model->Train(dataset.train);
  model->SetTelemetry(nullptr);
  telemetry.RecordManifest({{"final_loss", stats.final_loss}});
  return telemetry.lines();
}

TEST(TelemetryDeterminismTest, StreamIsBitwiseIdenticalAt1And4Threads) {
  const std::vector<std::string> serial = TrainWithTelemetry(1);
  const std::vector<std::string> parallel = TrainWithTelemetry(4);
  util::ThreadPool::SetGlobalNumThreads(0);
  MetricsRegistry::Global().Reset();
  Tracer::Global().Reset();

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "record " << i;
  }
  // The stream is non-trivial: a run_start, one record per epoch, and the
  // manifest.
  EXPECT_EQ(serial.size(), 4u);
}

}  // namespace
}  // namespace contratopic
