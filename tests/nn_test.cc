#include <cmath>

#include <gtest/gtest.h>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialization.h"
#include "tensor/kernels.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

#include <fstream>
#include <iterator>

namespace contratopic {
namespace nn {
namespace {

using autodiff::Backward;
using autodiff::MeanAll;
using autodiff::Square;
using autodiff::Sub;
using autodiff::SumAll;
using autodiff::Var;
using tensor::Tensor;

TEST(LinearTest, ForwardShapeAndBias) {
  util::Rng rng(1);
  Linear layer(4, 3, rng);
  Var x = Var::Constant(Tensor::Ones(2, 4));
  Var y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
  // Bias starts at zero, so output = x W.
  const Tensor expected =
      tensor::MatMulNew(x.value(), false, layer.weight().value(), false);
  EXPECT_TRUE(tensor::AllClose(y.value(), expected, 1e-5f));
}

TEST(LinearTest, ParametersExposed) {
  util::Rng rng(2);
  Linear layer(4, 3, rng, "enc");
  const auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "enc.weight");
  EXPECT_EQ(params[1].name, "enc.bias");
}

TEST(LinearTest, NoBiasVariant) {
  util::Rng rng(3);
  Linear layer(4, 3, rng, "nb", /*with_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(BatchNormTest, NormalizesBatchInTraining) {
  util::Rng rng(4);
  BatchNorm1d bn(3);
  bn.SetTraining(true);
  Tensor x = Tensor::RandNormal(64, 3, rng, 5.0f, 2.0f);
  Var y = bn.Forward(Var::Constant(x));
  const Tensor col_mean = tensor::ColMean(y.value());
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(col_mean.at(0, c), 0.0f, 1e-3f);
  }
}

TEST(BatchNormTest, RunningStatsTrackBatchStats) {
  util::Rng rng(5);
  BatchNorm1d bn(2, "bn", /*momentum=*/1.0f);  // Copy the batch stats.
  bn.SetTraining(true);
  Tensor x = Tensor::RandNormal(256, 2, rng, 3.0f, 1.5f);
  bn.Forward(Var::Constant(x));
  EXPECT_NEAR(bn.running_mean().at(0, 0), 3.0f, 0.3f);
  EXPECT_NEAR(bn.running_var().at(0, 1), 2.25f, 0.5f);
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  util::Rng rng(6);
  BatchNorm1d bn(2, "bn", 1.0f);
  bn.SetTraining(true);
  bn.Forward(Var::Constant(Tensor::RandNormal(128, 2, rng, 10.0f, 1.0f)));
  bn.SetTraining(false);
  // A sample near the running mean should normalize to ~0.
  Tensor probe = Tensor::Full(1, 2, 10.0f);
  Var y = bn.Forward(Var::Constant(probe));
  EXPECT_NEAR(y.value().at(0, 0), 0.0f, 0.5f);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  util::Rng rng(7);
  Dropout dropout(0.5f, rng);
  dropout.SetTraining(false);
  Tensor x = Tensor::Ones(4, 4);
  Var y = dropout.Forward(Var::Constant(x));
  EXPECT_TRUE(tensor::AllClose(y.value(), x));
}

TEST(DropoutTest, TrainingPreservesExpectation) {
  util::Rng rng(8);
  Dropout dropout(0.5f, rng);
  dropout.SetTraining(true);
  Tensor x = Tensor::Ones(100, 100);
  Var y = dropout.Forward(Var::Constant(x));
  // Inverted dropout: E[output] == input.
  EXPECT_NEAR(y.value().Mean(), 1.0f, 0.05f);
  // Roughly half the entries are zero.
  int zeros = 0;
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    if (y.value().data()[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.05);
}

TEST(ActivationTest, NamesRoundTrip) {
  EXPECT_EQ(ActivationFromName("relu"), Activation::kRelu);
  EXPECT_EQ(ActivationFromName("selu"), Activation::kSelu);
  EXPECT_EQ(ActivationFromName("none"), Activation::kNone);
}

TEST(MlpTest, ForwardShape) {
  util::Rng rng(9);
  Mlp::Config config;
  config.layer_sizes = {10, 8, 6};
  config.batch_norm = true;
  config.dropout_rate = 0.2f;
  Mlp mlp(config, rng);
  Var y = mlp.Forward(Var::Constant(Tensor::Ones(5, 10)));
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 6);
  // 2 linear layers * 2 params + batch norm * 2.
  EXPECT_EQ(mlp.Parameters().size(), 6u);
}

// ---------------------------------------------------------------------------
// Optimizers: closed-form quadratic and a small regression problem.
// ---------------------------------------------------------------------------

TEST(SgdTest, DescendsQuadratic) {
  Var w = Var::Leaf(Tensor::Full(1, 1, 10.0f), true);
  Sgd sgd(0.1f);
  for (int step = 0; step < 100; ++step) {
    Var loss = Square(w);
    Backward(loss);
    sgd.Step({{"w", w}});
    w.ZeroGrad();
  }
  EXPECT_NEAR(w.value().scalar(), 0.0f, 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Var w1 = Var::Leaf(Tensor::Full(1, 1, 10.0f), true);
  Var w2 = Var::Leaf(Tensor::Full(1, 1, 10.0f), true);
  Sgd plain(0.01f);
  Sgd momentum(0.01f, 0.9f);
  for (int step = 0; step < 20; ++step) {
    Backward(Square(w1));
    plain.Step({{"w", w1}});
    w1.ZeroGrad();
    Backward(Square(w2));
    momentum.Step({{"w", w2}});
    w2.ZeroGrad();
  }
  EXPECT_LT(std::fabs(w2.value().scalar()), std::fabs(w1.value().scalar()));
}

TEST(AdamTest, SolvesLinearRegression) {
  util::Rng rng(10);
  // y = X w* with known w*.
  const Tensor x = Tensor::RandNormal(128, 4, rng);
  Tensor w_star(4, 1, {1.0f, -2.0f, 0.5f, 3.0f});
  const Tensor y = tensor::MatMulNew(x, false, w_star, false);

  Var w = Var::Leaf(Tensor::Zeros(4, 1), true);
  Adam adam(0.05f);
  for (int step = 0; step < 400; ++step) {
    Var pred = autodiff::MatMul(Var::Constant(x), w);
    Var loss = MeanAll(Square(Sub(pred, Var::Constant(y))));
    Backward(loss);
    adam.Step({{"w", w}});
    w.ZeroGrad();
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value().at(i, 0), w_star.at(i, 0), 0.05f) << "coef " << i;
  }
}

TEST(AdamTest, WeightDecayShrinksUnusedParams) {
  Var w = Var::Leaf(Tensor::Full(1, 1, 5.0f), true);
  Adam adam(0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int step = 0; step < 200; ++step) {
    // Loss is constant in w; only decay acts, via the decayed gradient.
    Var loss = MeanAll(Square(autodiff::MulScalar(w, 0.0f)));
    Backward(loss);
    adam.Step({{"w", w}});
    w.ZeroGrad();
  }
  EXPECT_LT(std::fabs(w.value().scalar()), 2.0f);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  Var w = Var::Leaf(Tensor::Full(1, 4, 0.0f), true);
  Backward(SumAll(autodiff::MulScalar(w, 100.0f)));
  // Gradient = 100 per element, norm = 200.
  const float before = ClipGradNorm({{"w", w}}, 1.0f);
  EXPECT_NEAR(before, 200.0f, 1e-3f);
  double norm_sq = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    norm_sq += static_cast<double>(w.grad().at(0, i)) * w.grad().at(0, i);
  }
  EXPECT_NEAR(std::sqrt(norm_sq), 1.0f, 1e-4f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Var w = Var::Leaf(Tensor::Full(1, 1, 0.0f), true);
  Backward(SumAll(w));
  ClipGradNorm({{"w", w}}, 10.0f);
  EXPECT_FLOAT_EQ(w.grad().scalar(), 1.0f);
}

TEST(SerializationTest, SaveLoadRoundTrip) {
  util::Rng rng(21);
  Linear original(4, 3, rng, "layer");
  const std::string path = ::testing::TempDir() + "/ct_params_test.bin";
  ASSERT_TRUE(SaveParameters(original.Parameters(), path).ok());

  util::Rng rng2(99);
  Linear restored(4, 3, rng2, "layer");
  ASSERT_FALSE(
      tensor::AllClose(restored.weight().value(), original.weight().value()));
  ASSERT_TRUE(LoadParameters(restored.Parameters(), path).ok());
  EXPECT_TRUE(
      tensor::AllClose(restored.weight().value(), original.weight().value()));
  EXPECT_TRUE(
      tensor::AllClose(restored.bias().value(), original.bias().value()));
}

TEST(SerializationTest, ShapeMismatchIsAnError) {
  util::Rng rng(22);
  Linear original(4, 3, rng, "layer");
  const std::string path = ::testing::TempDir() + "/ct_params_mismatch.bin";
  ASSERT_TRUE(SaveParameters(original.Parameters(), path).ok());
  Linear wrong_shape(5, 3, rng, "layer");
  const util::Status status = LoadParameters(wrong_shape.Parameters(), path);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos)
      << status;
}

TEST(SerializationTest, UnknownParameterNameIsAnError) {
  util::Rng rng(23);
  Linear original(4, 3, rng, "layer_a");
  const std::string path = ::testing::TempDir() + "/ct_params_name.bin";
  ASSERT_TRUE(SaveParameters(original.Parameters(), path).ok());
  Linear renamed(4, 3, rng, "layer_b");
  const util::Status status = LoadParameters(renamed.Parameters(), path);
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(SerializationTest, EmptyFileIsIOError) {
  const std::string path = ::testing::TempDir() + "/ct_params_empty.bin";
  { std::ofstream touch(path, std::ios::binary | std::ios::trunc); }
  util::Rng rng(24);
  Linear model(4, 3, rng, "layer");
  const util::Status status = LoadParameters(model.Parameters(), path);
  EXPECT_EQ(status.code(), util::StatusCode::kIOError);
}

TEST(SerializationTest, TruncatedFileIsIOError) {
  util::Rng rng(25);
  Linear original(4, 3, rng, "layer");
  const std::string path = ::testing::TempDir() + "/ct_params_trunc.bin";
  ASSERT_TRUE(SaveParameters(original.Parameters(), path).ok());
  // Chop the file mid-entry; every prefix must fail cleanly (no crash).
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string cut = path + ".cut";
  for (size_t keep : {bytes.size() / 2, bytes.size() - 1, size_t{12}}) {
    std::ofstream out(cut, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    const util::Status status = LoadParameters(original.Parameters(), cut);
    EXPECT_EQ(status.code(), util::StatusCode::kIOError)
        << "keep=" << keep << ": " << status;
  }
}

TEST(SerializationTest, CountMismatchFailsBeforeReadingEntries) {
  util::Rng rng(26);
  Linear original(4, 3, rng, "layer");  // weight + bias = 2 parameters
  const std::string path = ::testing::TempDir() + "/ct_params_count.bin";
  ASSERT_TRUE(SaveParameters(original.Parameters(), path).ok());
  std::vector<Parameter> just_weight = {original.Parameters()[0]};
  const util::Status status = LoadParameters(just_weight, path);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("stores 2 parameters"), std::string::npos)
      << status;
}

TEST(SerializationTest, DuplicateEntryIsDataLoss) {
  util::Rng rng(27);
  Linear model(2, 2, rng, "layer");
  const std::string path = ::testing::TempDir() + "/ct_params_dup.bin";
  util::BinaryWriter writer(path);
  writer.WriteU64(2);
  for (int copy = 0; copy < 2; ++copy) {
    writer.WriteString("layer.weight");
    writer.WriteU64(2);
    writer.WriteU64(2);
    writer.WriteFloatVector({1.0f, 2.0f, 3.0f, 4.0f});
  }
  ASSERT_TRUE(writer.Close().ok());
  const util::Status status = LoadParameters(model.Parameters(), path);
  EXPECT_EQ(status.code(), util::StatusCode::kDataLoss);
}

TEST(SerializationTest, ImpossibleShapeIsDataLoss) {
  util::Rng rng(28);
  Linear model(2, 2, rng, "layer");
  const std::string path = ::testing::TempDir() + "/ct_params_shape.bin";
  util::BinaryWriter writer(path);
  writer.WriteU64(1);
  writer.WriteString("layer.weight");
  writer.WriteU64(2);
  writer.WriteU64(2);
  writer.WriteFloatVector({1.0f, 2.0f, 3.0f});  // 3 values for a 2x2
  ASSERT_TRUE(writer.Close().ok());
  const util::Status status = LoadParameters(model.Parameters(), path);
  EXPECT_EQ(status.code(), util::StatusCode::kDataLoss);
}

TEST(SerializationTest, MissingParametersFailUnlessPartialAllowed) {
  util::Rng rng(29);
  Linear model(4, 3, rng, "layer");
  const std::string path = ::testing::TempDir() + "/ct_params_partial.bin";
  std::vector<Parameter> just_weight = {model.Parameters()[0]};
  ASSERT_TRUE(SaveParameters(just_weight, path).ok());
  const util::Status status = LoadParameters(model.Parameters(), path);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("layer.bias"), std::string::npos)
      << status;
  EXPECT_TRUE(
      LoadParameters(model.Parameters(), path, /*allow_partial=*/true).ok());
}

}  // namespace
}  // namespace nn
}  // namespace contratopic
