// Process-count invariance lock-in for the distributed data-parallel
// trainer (DESIGN.md §13): --workers=1, 2, and 4 must produce
// bitwise-identical beta/theta/loss/NPMI trajectories. Alongside the
// end-to-end contract, this suite pins the primitives it rests on: the
// canonical shard tree fold (power-of-two blocks are exact subtrees),
// the fixed shard grid (ragged tails, empty shards), the partial
// combine's identity semantics, the wire framing (CRC, tags, EOF), and
// the exact sharded co-occurrence merge.

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/contratopic.h"
#include "dist/communicator.h"
#include "dist/trainer.h"
#include "embed/cooccurrence.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "text/synthetic.h"
#include "topicmodel/neural_base.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/rng.h"

// fork() under ThreadSanitizer trips on the sanitizer's own background
// threads; the multiprocess legs are skipped there (the fork-free
// primitives above still run). The chaos suite carries the same guard.
#if defined(__SANITIZE_THREAD__)
#define CT_SKIP_FORK_TESTS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CT_SKIP_FORK_TESTS 1
#endif
#endif

namespace contratopic {
namespace {

using tensor::Tensor;
using topicmodel::CombineDistPartials;
using topicmodel::DistStepPartial;

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.same_shape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

// ---------------------------------------------------------------------------
// TreeFold: the canonical shard tree.
// ---------------------------------------------------------------------------

std::string FoldString(int64_t lo, int64_t hi) {
  return util::TreeFold<std::string>(
      lo, hi, [](int64_t i) { return std::to_string(i); },
      [](std::string l, std::string r) { return "(" + l + " " + r + ")"; });
}

TEST(TreeFoldTest, PowerOfTwoRangeIsAFullBinaryTree) {
  EXPECT_EQ(FoldString(3, 4), "3");
  EXPECT_EQ(FoldString(0, 2), "(0 1)");
  EXPECT_EQ(FoldString(0, 8), "(((0 1) (2 3)) ((4 5) (6 7)))");
}

TEST(TreeFoldTest, RaggedTailKeepsLeftSubtreeFull) {
  // n=6 splits at RoundUpPow2(6)/2 = 4: the left half is the full
  // 4-leaf subtree, the tail hangs off the right.
  EXPECT_EQ(FoldString(0, 6), "(((0 1) (2 3)) (4 5))");
  EXPECT_EQ(FoldString(0, 5), "(((0 1) (2 3)) 4)");
  EXPECT_EQ(FoldString(0, 3), "((0 1) 2)");
}

// The invariance property itself: folding per-block subtrees and then
// folding the blocks reproduces the flat fold EXACTLY (same parse tree),
// for every power-of-two block count. This is why worker-local folds +
// the hub's rank-ordered fold equal the single-process fold bitwise.
TEST(TreeFoldTest, BlockFoldsComposeToTheFlatFold) {
  const auto combine = [](std::string l, std::string r) {
    return "(" + l + " " + r + ")";
  };
  for (int total : {8, 16}) {
    const std::string flat = FoldString(0, total);
    for (int blocks = 2; blocks <= total; blocks *= 2) {
      const int width = total / blocks;
      const std::string stacked = util::TreeFold<std::string>(
          0, blocks,
          [&](int64_t b) { return FoldString(b * width, (b + 1) * width); },
          combine);
      EXPECT_EQ(stacked, flat) << total << " leaves in " << blocks
                               << " blocks";
    }
  }
}

// ---------------------------------------------------------------------------
// ShardRange: the fixed grid.
// ---------------------------------------------------------------------------

TEST(ShardRangeTest, TilesTheRangeInOrder) {
  for (int64_t total : {0, 1, 2, 3, 7, 10, 128, 1001}) {
    for (int64_t shards : {1, 2, 4, 8}) {
      int64_t expected_lo = 0;
      for (int64_t s = 0; s < shards; ++s) {
        const auto [lo, hi] = util::ShardRange(total, s, shards);
        EXPECT_EQ(lo, expected_lo) << total << "/" << shards << " shard " << s;
        EXPECT_LE(lo, hi);
        expected_lo = hi;
      }
      EXPECT_EQ(expected_lo, total);
    }
  }
}

TEST(ShardRangeTest, RaggedTotalsSpreadTheRemainder) {
  // 10 docs over 4 shards: sizes 2,3,2,3 -- never differing by more
  // than 1, and a pure function of (total, shard, shards).
  const int64_t sizes[] = {2, 3, 2, 3};
  for (int64_t s = 0; s < 4; ++s) {
    const auto [lo, hi] = util::ShardRange(10, s, 4);
    EXPECT_EQ(hi - lo, sizes[s]) << "shard " << s;
  }
}

TEST(ShardRangeTest, SmallTotalsYieldEmptyShards) {
  int64_t non_empty = 0;
  for (int64_t s = 0; s < 4; ++s) {
    const auto [lo, hi] = util::ShardRange(2, s, 4);
    non_empty += (hi > lo) ? 1 : 0;
  }
  EXPECT_EQ(non_empty, 2);
}

// ---------------------------------------------------------------------------
// CombineDistPartials: identity semantics and merge-join.
// ---------------------------------------------------------------------------

Tensor FilledTensor(int64_t rows, int64_t cols, float base) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) t.data()[i] = base + 0.25f * i;
  return t;
}

DistStepPartial MakePartial(double loss,
                            std::vector<std::pair<std::string, double>> comps,
                            float grad_base) {
  DistStepPartial p;
  p.empty = false;
  p.loss = loss;
  p.components = std::move(comps);
  p.grads.push_back(FilledTensor(2, 3, grad_base));
  p.buffer_deltas.push_back(FilledTensor(1, 4, grad_base + 10.0f));
  return p;
}

TEST(CombineDistPartialsTest, EmptyIsATrueIdentity) {
  DistStepPartial identity;  // empty
  DistStepPartial value = MakePartial(1.5, {{"kl", 2.0}}, 0.0f);
  // Poison a gradient with -0.0f: a sum-with-zero identity would flip it
  // to +0.0f and break bitwise invariance across worker counts.
  value.grads[0].data()[0] = -0.0f;

  const DistStepPartial left = CombineDistPartials(identity, value);
  const DistStepPartial right =
      CombineDistPartials(MakePartial(1.5, {{"kl", 2.0}}, 0.0f),
                          DistStepPartial{});
  EXPECT_FALSE(left.empty);
  EXPECT_EQ(left.loss, 1.5);
  EXPECT_TRUE(std::signbit(left.grads[0].data()[0]));
  EXPECT_FALSE(right.empty);
  EXPECT_EQ(right.loss, 1.5);

  const DistStepPartial both =
      CombineDistPartials(DistStepPartial{}, DistStepPartial{});
  EXPECT_TRUE(both.empty);
}

TEST(CombineDistPartialsTest, SumsLossesGradsAndMergesComponents) {
  const DistStepPartial a =
      MakePartial(1.0, {{"a", 1.0}, {"c", 2.0}}, 1.0f);
  const DistStepPartial b =
      MakePartial(2.5, {{"b", 3.0}, {"c", 4.0}}, 2.0f);
  const DistStepPartial sum = CombineDistPartials(a, b);
  EXPECT_EQ(sum.loss, 3.5);
  const std::vector<std::pair<std::string, double>> expected = {
      {"a", 1.0}, {"b", 3.0}, {"c", 6.0}};
  EXPECT_EQ(sum.components, expected);
  for (int64_t i = 0; i < sum.grads[0].numel(); ++i) {
    EXPECT_EQ(sum.grads[0].data()[i],
              a.grads[0].data()[i] + b.grads[0].data()[i]);
  }
  for (int64_t i = 0; i < sum.buffer_deltas[0].numel(); ++i) {
    EXPECT_EQ(sum.buffer_deltas[0].data()[i],
              a.buffer_deltas[0].data()[i] + b.buffer_deltas[0].data()[i]);
  }
}

// ---------------------------------------------------------------------------
// Wire format: partial images and channel framing.
// ---------------------------------------------------------------------------

TEST(DistWireTest, PartialRoundTripsBitwise) {
  DistStepPartial p = MakePartial(3.75, {{"kl", 1.25}, {"recon", -2.0}}, 5.0f);
  p.grads[0].data()[1] = -0.0f;
  const std::string bytes = dist::PackPartial(p);
  util::StatusOr<DistStepPartial> back = dist::UnpackPartial(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_FALSE(back->empty);
  EXPECT_EQ(back->loss, p.loss);
  EXPECT_EQ(back->components, p.components);
  ASSERT_EQ(back->grads.size(), 1u);
  ExpectBitwiseEqual(back->grads[0], p.grads[0]);
  EXPECT_TRUE(std::signbit(back->grads[0].data()[1]));
  ASSERT_EQ(back->buffer_deltas.size(), 1u);
  ExpectBitwiseEqual(back->buffer_deltas[0], p.buffer_deltas[0]);

  const std::string empty_bytes = dist::PackPartial(DistStepPartial{});
  util::StatusOr<DistStepPartial> empty = dist::UnpackPartial(empty_bytes);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty);
}

TEST(DistWireTest, CorruptPartialImagesAreRejected) {
  const std::string bytes =
      dist::PackPartial(MakePartial(1.0, {{"kl", 1.0}}, 0.0f));
  // Truncation at any point must fail structurally, never crash.
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2,
                     bytes.size() - 1}) {
    util::StatusOr<DistStepPartial> r =
        dist::UnpackPartial(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
    EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  }
  // Trailing garbage is corruption too (the frame length said otherwise).
  util::StatusOr<DistStepPartial> r = dist::UnpackPartial(bytes + "x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
}

TEST(DistWireTest, Crc32MatchesTheReferenceCheckValue) {
  // The standard CRC-32/IEEE check value.
  const std::string check = "123456789";
  EXPECT_EQ(dist::Crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(dist::Crc32("", 0), 0u);
}

TEST(DistChannelTest, FramesRoundTripWithTags) {
  dist::Channel a, b;
  ASSERT_TRUE(dist::Channel::CreatePair(&a, &b).ok());
  ASSERT_TRUE(a.Send(7, "hello shards").ok());
  ASSERT_TRUE(a.Send(8, "").ok());
  util::StatusOr<std::string> first = b.Recv(7);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, "hello shards");
  util::StatusOr<std::string> second = b.Recv(8);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "");
}

TEST(DistChannelTest, TagMismatchIsDataLoss) {
  dist::Channel a, b;
  ASSERT_TRUE(dist::Channel::CreatePair(&a, &b).ok());
  ASSERT_TRUE(a.Send(3, "step three").ok());
  util::StatusOr<std::string> r = b.Recv(4);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
}

TEST(DistChannelTest, PeerCloseIsUnavailable) {
  dist::Channel a, b;
  ASSERT_TRUE(dist::Channel::CreatePair(&a, &b).ok());
  a.Close();
  util::StatusOr<std::string> r = b.Recv(0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kUnavailable);
}

TEST(DistChannelTest, InjectedCorruptionFailsTheCrc) {
  util::FaultInjector::Global().Reset();
  dist::Channel a, b;
  ASSERT_TRUE(dist::Channel::CreatePair(&a, &b).ok());
  ASSERT_TRUE(a.Send(1, "payload under test").ok());
  util::FaultInjector::Global().Arm("dist.recv_corrupt", [] {
    util::FaultSpec spec;
    spec.every_nth = 1;
    spec.max_fires = 1;
    return spec;
  }());
  util::StatusOr<std::string> r = b.Recv(1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  // The fault is spent; the next frame passes its CRC again.
  ASSERT_TRUE(a.Send(2, "clean").ok());
  util::StatusOr<std::string> clean = b.Recv(2);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, "clean");
  util::FaultInjector::Global().Reset();
}

TEST(DistChannelTest, InjectedSendFaultIsIOError) {
  util::FaultInjector::Global().Reset();
  dist::Channel a, b;
  ASSERT_TRUE(dist::Channel::CreatePair(&a, &b).ok());
  util::FaultInjector::Global().Arm("dist.send", [] {
    util::FaultSpec spec;
    spec.every_nth = 1;
    spec.max_fires = 1;
    return spec;
  }());
  EXPECT_EQ(a.Send(1, "dropped").code(), util::StatusCode::kIOError);
  util::FaultInjector::Global().Reset();
}

// ---------------------------------------------------------------------------
// Sharded co-occurrence merge: exact, grid-invariant.
// ---------------------------------------------------------------------------

text::BowCorpus RandomCorpus(int num_docs, int vocab_size, uint64_t seed) {
  text::Vocabulary vocab;
  for (int i = 0; i < vocab_size; ++i) vocab.AddWord("w" + std::to_string(i));
  util::Rng rng(seed);
  std::vector<text::Document> docs(num_docs);
  for (auto& doc : docs) {
    const int unique = 5 + static_cast<int>(rng.UniformInt(8));
    for (int w : rng.SampleWithoutReplacement(vocab_size, unique)) {
      doc.entries.push_back({w, 1 + static_cast<int>(rng.UniformInt(4))});
    }
  }
  return text::BowCorpus(std::move(vocab), std::move(docs));
}

TEST(ShardedCooccurrenceTest, BlockMergeMatchesSerialBitwise) {
  const text::BowCorpus corpus = RandomCorpus(700, 50, 17);
  embed::CooccurrenceCounts serial(corpus.vocab_size());
  serial.AddPresence(corpus);

  const int64_t S = 8;
  for (int workers : {1, 2, 4, 8}) {
    const int64_t block = S / workers;
    std::vector<embed::CooccurrenceCounts> blocks;
    for (int w = 0; w < workers; ++w) {
      embed::CooccurrenceCounts counts(corpus.vocab_size());
      for (int64_t s = w * block; s < (w + 1) * block; ++s) {
        const auto [lo, hi] = util::ShardRange(corpus.num_docs(), s, S);
        counts.AddPresenceRange(corpus, lo, hi);
      }
      blocks.push_back(std::move(counts));
    }
    embed::CooccurrenceCounts merged =
        util::TreeFold<embed::CooccurrenceCounts>(
            0, workers, [&](int64_t w) { return std::move(blocks[w]); },
            [](embed::CooccurrenceCounts l, embed::CooccurrenceCounts r) {
              l.Merge(r);
              return l;
            });
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(merged.num_docs(), serial.num_docs());
    ExpectBitwiseEqual(merged.matrix(), serial.matrix());
    for (int i = 0; i < corpus.vocab_size(); ++i) {
      ASSERT_EQ(merged.marginal(i), serial.marginal(i)) << "marginal " << i;
    }
    // And so the derived NPMI kernel is identical too.
    ExpectBitwiseEqual(eval::NpmiMatrix::FromCounts(merged).matrix(),
                       eval::NpmiMatrix::FromCounts(serial).matrix());
  }
}

TEST(ShardedCooccurrenceTest, SerializationRoundTripsBitwise) {
  const text::BowCorpus corpus = RandomCorpus(300, 40, 23);
  embed::CooccurrenceCounts counts(corpus.vocab_size());
  counts.AddPresenceRange(corpus, 0, corpus.num_docs());
  std::string bytes;
  util::BinaryWriter writer(&bytes);
  counts.Serialize(&writer);
  util::BinaryReader reader(bytes.data(), bytes.size());
  util::StatusOr<embed::CooccurrenceCounts> back =
      embed::CooccurrenceCounts::Deserialize(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_docs(), counts.num_docs());
  ExpectBitwiseEqual(back->matrix(), counts.matrix());
  for (int i = 0; i < corpus.vocab_size(); ++i) {
    ASSERT_EQ(back->marginal(i), counts.marginal(i));
  }

  // Truncated images are structurally rejected.
  util::BinaryReader short_reader(bytes.data(), bytes.size() / 2);
  util::StatusOr<embed::CooccurrenceCounts> truncated =
      embed::CooccurrenceCounts::Deserialize(&short_reader);
  EXPECT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), util::StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// End-to-end: ContraTopic through the data-parallel trainer at
// --workers = 1, 2, 4.
// ---------------------------------------------------------------------------

struct DistRun {
  double final_loss = 0.0;
  Tensor beta;
  Tensor theta;
  std::vector<double> coherence;
};

DistRun TrainDistributed(int workers) {
  // Everything is rebuilt from scratch per run: corpus, embeddings, the
  // sharded NPMI kernel, and training all run under the requested worker
  // count.
  const text::SyntheticConfig config = text::Preset20NG(0.1);
  text::SyntheticDataset dataset = text::GenerateSynthetic(config);
  const text::BowCorpus reference =
      text::GenerateReferenceCorpus(config, dataset.train.vocab());
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(reference, [] {
        embed::EmbeddingConfig c;
        c.dimension = 16;
        return c;
      }());

  topicmodel::TrainConfig tc;
  tc.num_topics = 8;
  tc.epochs = 2;
  tc.batch_size = 128;
  tc.encoder_hidden = 32;
  tc.encoder_layers = 1;
  auto model = core::MakeContraTopicEtm(tc, embeddings);

  dist::Options options;
  options.workers = workers;
  options.num_shards = 4;
  dist::DataParallelTrainer trainer(model.get(), options);
  util::StatusOr<topicmodel::TrainStats> stats = trainer.Train(dataset.train);
  CHECK(stats.ok()) << stats.status().ToString();
  CHECK(stats->status.ok()) << stats->status.ToString();

  DistRun run;
  run.final_loss = stats->final_loss;
  run.beta = model->Beta();
  run.theta = model->InferTheta(dataset.test);
  const eval::NpmiMatrix test_npmi = eval::NpmiMatrix::Compute(dataset.test);
  run.coherence = eval::PerTopicCoherence(run.beta, test_npmi);
  return run;
}

TEST(DistDeterminismTest, WorkerCountIsBitwiseInvariant) {
#ifdef CT_SKIP_FORK_TESTS
  GTEST_SKIP() << "fork-based legs are disabled under ThreadSanitizer";
#else
  const DistRun baseline = TrainDistributed(1);
  ASSERT_GT(baseline.beta.numel(), 0);
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const DistRun run = TrainDistributed(workers);
    EXPECT_EQ(baseline.final_loss, run.final_loss);
    ExpectBitwiseEqual(baseline.beta, run.beta);
    ExpectBitwiseEqual(baseline.theta, run.theta);
    ASSERT_EQ(baseline.coherence.size(), run.coherence.size());
    for (size_t k = 0; k < baseline.coherence.size(); ++k) {
      EXPECT_EQ(baseline.coherence[k], run.coherence[k]) << "topic " << k;
    }
  }
#endif
}

TEST(DistTrainerTest, RejectsInvalidWorkerGrids) {
  const text::BowCorpus corpus = RandomCorpus(64, 20, 3);
  topicmodel::TrainConfig tc;
  tc.num_topics = 4;
  tc.epochs = 1;
  tc.batch_size = 16;
  tc.encoder_hidden = 16;
  tc.encoder_layers = 1;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(corpus, [] {
        embed::EmbeddingConfig c;
        c.dimension = 8;
        return c;
      }());
  auto model = core::MakeContraTopicEtm(tc, embeddings);
  for (auto [workers, shards] : {std::pair{3, 4}, {8, 4}, {0, 4}, {2, 3}}) {
    dist::Options options;
    options.workers = workers;
    options.num_shards = shards;
    dist::DataParallelTrainer trainer(model.get(), options);
    util::StatusOr<topicmodel::TrainStats> stats = trainer.Train(corpus);
    EXPECT_FALSE(stats.ok()) << workers << "/" << shards;
    EXPECT_EQ(stats.status().code(), util::StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace contratopic
