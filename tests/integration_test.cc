// End-to-end pipeline tests: corpus generation -> embeddings -> training ->
// every evaluation metric in the paper, at micro scale. These guard the
// exact paths the bench harness exercises.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/contratopic.h"
#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "eval/clustering.h"
#include "eval/intrusion.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "text/synthetic.h"

namespace contratopic {
namespace {

using topicmodel::TrainConfig;

struct Pipeline {
  text::SyntheticDataset dataset;
  text::BowCorpus reference;
  embed::WordEmbeddings embeddings;
  eval::NpmiMatrix train_npmi;
  eval::NpmiMatrix test_npmi;

  explicit Pipeline(const text::SyntheticConfig& config)
      : dataset(text::GenerateSynthetic(config)),
        reference(text::GenerateReferenceCorpus(config, dataset.train.vocab())),
        embeddings(embed::WordEmbeddings::Train(reference, [] {
          embed::EmbeddingConfig c;
          c.dimension = 24;
          return c;
        }())),
        train_npmi(eval::NpmiMatrix::Compute(dataset.train)),
        test_npmi(eval::NpmiMatrix::Compute(dataset.test)) {}
};

Pipeline& SharedPipeline() {
  static Pipeline* pipeline = new Pipeline(text::Preset20NG(0.2));
  return *pipeline;
}

TrainConfig SmallConfig() {
  TrainConfig config;
  config.num_topics = 10;
  config.epochs = 6;
  config.batch_size = 200;
  config.encoder_hidden = 48;
  config.encoder_layers = 1;
  return config;
}

TEST(IntegrationTest, ContraTopicFullPipeline) {
  Pipeline& p = SharedPipeline();
  auto model = core::MakeContraTopicEtm(SmallConfig(), p.embeddings);
  const topicmodel::TrainStats stats = model->Train(p.dataset.train);
  EXPECT_GT(stats.seconds_per_epoch, 0.0);
  // The NPMI kernel memory is accounted (paper §V.E).
  const int64_t v = p.dataset.train.vocab_size();
  EXPECT_EQ(stats.extra_memory_bytes, v * v * 4);

  // Interpretability on held-out co-occurrence.
  const eval::InterpretabilityCurve curve =
      eval::EvaluateInterpretability(model->Beta(), p.test_npmi);
  EXPECT_GT(curve.coherence[0], -0.2);
  EXPECT_GT(curve.diversity[0], 0.5);

  // Clustering.
  const tensor::Tensor theta = model->InferTheta(p.dataset.test);
  util::Rng rng(3);
  const eval::ClusteringScore score = eval::EvaluateClustering(
      theta, p.dataset.test.Labels([&] {
        std::vector<int> all(p.dataset.test.num_docs());
        for (int i = 0; i < p.dataset.test.num_docs(); ++i) all[i] = i;
        return all;
      }()),
      10, rng);
  EXPECT_GT(score.purity, 0.1);
  EXPECT_GE(score.nmi, 0.0);

  // Word intrusion.
  const auto questions = eval::GenerateIntrusionQuestions(
      model->Beta(), p.train_npmi, eval::IntrusionConfig{});
  EXPECT_FALSE(questions.empty());
  const double wis = eval::WordIntrusionScore(questions, p.test_npmi);
  EXPECT_GE(wis, 0.0);
  EXPECT_LE(wis, 1.0);
}

TEST(IntegrationTest, ContrastiveRegularizerIsActive) {
  Pipeline& p = SharedPipeline();
  TrainConfig config = SmallConfig();
  core::ContraTopicOptions options;
  options.warmup_fraction = 0.0f;  // Active from step one for this check.
  auto model = core::MakeContraTopicEtm(config, p.embeddings, options);
  model->Train(p.dataset.train);
  EXPECT_NE(model->last_contrastive_loss(), 0.0f);
}

TEST(IntegrationTest, LambdaZeroMatchesPlainBackboneLoss) {
  Pipeline& p = SharedPipeline();
  TrainConfig config = SmallConfig();
  config.epochs = 2;
  core::ContraTopicOptions options;
  options.lambda = 0.0f;
  auto contratopic = core::MakeContraTopicEtm(config, p.embeddings, options);
  const double contra_loss =
      contratopic->Train(p.dataset.train).final_loss;
  auto etm = core::CreateModel("etm", config, p.embeddings);
  const double etm_loss = etm->Train(p.dataset.train).final_loss;
  // Same objective, but the regularized model draws batch order and
  // encoder noise from differently-interleaved rng streams, so the match
  // is statistical rather than bitwise.
  EXPECT_NEAR(contra_loss, etm_loss, 0.03 * std::max(1.0, std::fabs(etm_loss)));
}

TEST(IntegrationTest, BackboneSubstitutionTrains) {
  Pipeline& p = SharedPipeline();
  for (const char* name : {"contratopic-wlda", "contratopic-wete"}) {
    auto model = core::CreateModel(name, SmallConfig(), p.embeddings);
    model->Train(p.dataset.train);
    const tensor::Tensor beta = model->Beta();
    for (int64_t i = 0; i < beta.numel(); ++i) {
      ASSERT_FALSE(std::isnan(beta.data()[i])) << name;
    }
  }
}

TEST(IntegrationTest, VariantsProduceDifferentTopics) {
  Pipeline& p = SharedPipeline();
  TrainConfig config = SmallConfig();
  auto full = core::CreateModel("contratopic", config, p.embeddings);
  auto neg = core::CreateModel("contratopic-n", config, p.embeddings);
  full->Train(p.dataset.train);
  neg->Train(p.dataset.train);
  EXPECT_FALSE(tensor::AllClose(full->Beta(), neg->Beta(), 1e-6f));
}

TEST(IntegrationTest, SeedsReproduceTraining) {
  Pipeline& p = SharedPipeline();
  TrainConfig config = SmallConfig();
  config.epochs = 2;
  auto a = core::CreateModel("contratopic", config, p.embeddings);
  auto b = core::CreateModel("contratopic", config, p.embeddings);
  a->Train(p.dataset.train);
  b->Train(p.dataset.train);
  EXPECT_TRUE(tensor::AllClose(a->Beta(), b->Beta(), 1e-5f));
}

TEST(IntegrationTest, DifferentSeedsDiverge) {
  Pipeline& p = SharedPipeline();
  TrainConfig config = SmallConfig();
  config.epochs = 2;
  auto a = core::CreateModel("contratopic", config, p.embeddings);
  config.seed = 12345;
  auto b = core::CreateModel("contratopic", config, p.embeddings);
  a->Train(p.dataset.train);
  b->Train(p.dataset.train);
  EXPECT_FALSE(tensor::AllClose(a->Beta(), b->Beta(), 1e-5f));
}

}  // namespace
}  // namespace contratopic
