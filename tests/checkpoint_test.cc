// Checkpoint format robustness: round trips are bit-exact, and every
// byte-level corruption -- truncation at any prefix, any single bit
// flip, version skew, wrong magic -- surfaces as a util::Status, never
// a crash. These run under the address,undefined sanitizer CI job.

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "serve/checkpoint.h"
#include "tensor/tensor.h"
#include "text/corpus.h"
#include "text/synthetic.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"

namespace contratopic {
namespace serve {
namespace {

using tensor::Tensor;
using topicmodel::TrainConfig;
using util::StatusCode;

TrainConfig TinyConfig() {
  TrainConfig config;
  config.num_topics = 8;
  config.epochs = 2;
  config.batch_size = 128;
  config.encoder_hidden = 32;
  config.encoder_layers = 1;
  return config;
}

// Dataset, embeddings, and one saved checkpoint shared by the file.
struct CheckpointFixture {
  text::SyntheticDataset dataset;
  embed::WordEmbeddings embeddings;
  std::string etm_path;
  std::string etm_bytes;

  CheckpointFixture()
      : dataset(text::GenerateSynthetic(text::Preset20NG(0.15))),
        embeddings(embed::WordEmbeddings::Train(dataset.train, [] {
          embed::EmbeddingConfig c;
          c.dimension = 24;
          return c;
        }())) {
    auto model = core::CreateModel("etm", TinyConfig(), embeddings);
    model->Train(dataset.train);
    // gtest_discover_tests runs every TEST in its own process; suffix the
    // shared fixture path with the pid so parallel ctest workers do not
    // race each other's atomic-rename writes to one file.
    etm_path = ::testing::TempDir() + "/checkpoint_fixture_etm_" +
               std::to_string(::getpid()) + ".ckpt";
    CHECK(SaveCheckpoint(*model, dataset.train.vocab(), etm_path).ok());
    std::ifstream in(etm_path, std::ios::binary);
    etm_bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    CHECK(!etm_bytes.empty());
  }
};

CheckpointFixture& Shared() {
  static CheckpointFixture* fixture = new CheckpointFixture();
  return *fixture;
}

std::string WriteBytes(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  CHECK(out.good());
  return path;
}

bool TensorsBitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.rows()) * a.cols() *
                         sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

// Every checkpointable model in the zoo survives save -> load with every
// state tensor, beta, vocab, and top-word list bit-exact.
class CheckpointRoundTripTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(CheckpointRoundTripTest, RoundTripsBitExactly) {
  const std::string name = GetParam();
  CheckpointFixture& shared = Shared();
  auto model = core::CreateModel(name, TinyConfig(), shared.embeddings);
  model->Train(shared.dataset.train);

  // "ckpt_" prefix + pid keep these paths disjoint from the precision
  // round-trip tests and from parallel ctest workers sharing TempDir().
  const std::string path = ::testing::TempDir() + "/ckpt_roundtrip_" + name +
                           "_" + std::to_string(::getpid()) + ".ckpt";
  util::Status saved = SaveCheckpoint(*model, shared.dataset.train.vocab(),
                                      path);
  ASSERT_TRUE(saved.ok()) << saved;

  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_EQ(ckpt->descriptor.type, name);
  EXPECT_EQ(ckpt->descriptor.vocab_size, shared.dataset.train.vocab().size());
  EXPECT_TRUE(TensorsBitwiseEqual(ckpt->beta, model->Beta()));

  util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> restored =
      RestoreModel(*ckpt);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const std::vector<nn::NamedTensor> original =
      dynamic_cast<topicmodel::NeuralTopicModel*>(model.get())
          ->StateTensors();
  const std::vector<nn::NamedTensor> loaded = (*restored)->StateTensors();
  ASSERT_EQ(original.size(), loaded.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].name, loaded[i].name);
    EXPECT_TRUE(TensorsBitwiseEqual(*original[i].tensor, *loaded[i].tensor))
        << original[i].name;
  }
  EXPECT_TRUE(TensorsBitwiseEqual((*restored)->Beta(), model->Beta()));
}

INSTANTIATE_TEST_SUITE_P(Zoo, CheckpointRoundTripTest,
                         ::testing::Values("etm", "prodlda", "nstm", "clntm",
                                           "tsctm", "contratopic",
                                           "contratopic-p",
                                           "contratopic-wlda"));

TEST(CheckpointTest, SavedFileIsByteStable) {
  // Saving the same model twice produces identical bytes (no timestamps
  // or other nondeterminism in the format).
  CheckpointFixture& shared = Shared();
  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(shared.etm_path);
  ASSERT_TRUE(ckpt.ok());
  const std::string again = ::testing::TempDir() + "/byte_stable.ckpt";
  ASSERT_TRUE(WriteCheckpoint(*ckpt, again).ok());
  std::ifstream in(again, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, shared.etm_bytes);
}

TEST(CheckpointTest, TopWordListsMatchBeta) {
  CheckpointFixture& shared = Shared();
  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(shared.etm_path);
  ASSERT_TRUE(ckpt.ok());
  ASSERT_EQ(ckpt->top_words.size(),
            static_cast<size_t>(ckpt->descriptor.config.num_topics));
  for (size_t k = 0; k < ckpt->top_words.size(); ++k) {
    EXPECT_EQ(ckpt->top_words[k],
              ckpt->beta.TopKIndicesOfRow(static_cast<int>(k),
                                          kCheckpointTopWords));
  }
}

// ---------------------------------------------------------------------------
// BuildCheckpoint error cases
// ---------------------------------------------------------------------------

TEST(CheckpointTest, UntrainedModelIsFailedPrecondition) {
  CheckpointFixture& shared = Shared();
  auto model = core::CreateModel("etm", TinyConfig(), shared.embeddings);
  util::StatusOr<Checkpoint> ckpt =
      BuildCheckpoint(*model, shared.dataset.train.vocab());
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, NonNeuralModelIsInvalidArgument) {
  CheckpointFixture& shared = Shared();
  auto lda = core::CreateModel("lda", TinyConfig(), shared.embeddings);
  lda->Train(shared.dataset.train);
  util::StatusOr<Checkpoint> ckpt =
      BuildCheckpoint(*lda, shared.dataset.train.vocab());
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, VocabularyMismatchIsInvalidArgument) {
  CheckpointFixture& shared = Shared();
  auto model = core::CreateModel("etm", TinyConfig(), shared.embeddings);
  model->Train(shared.dataset.train);
  text::Vocabulary wrong;
  wrong.AddWord("alpha");
  wrong.AddWord("beta");
  util::StatusOr<Checkpoint> ckpt = BuildCheckpoint(*model, wrong);
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// File-level corruption: truncation, bit flips, header damage
// ---------------------------------------------------------------------------

TEST(CheckpointTest, MissingFileIsIOError) {
  util::StatusOr<Checkpoint> ckpt =
      ReadCheckpoint(::testing::TempDir() + "/does_not_exist.ckpt");
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kIOError);
}

TEST(CheckpointTest, EveryTruncationFailsCleanly) {
  // Every strict prefix of a valid checkpoint must be rejected with a
  // non-OK Status -- a sweep over a spread of cut points plus an
  // exhaustive pass over the header region.
  CheckpointFixture& shared = Shared();
  const std::string& bytes = shared.etm_bytes;
  std::vector<size_t> cuts;
  for (size_t c = 0; c < 32 && c < bytes.size(); ++c) cuts.push_back(c);
  for (int i = 1; i <= 64; ++i) {
    cuts.push_back(bytes.size() * static_cast<size_t>(i) / 65);
  }
  cuts.push_back(bytes.size() - 1);
  for (size_t cut : cuts) {
    const std::string path =
        WriteBytes("truncated.ckpt", bytes.substr(0, cut));
    util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(path);
    ASSERT_FALSE(ckpt.ok()) << "prefix of " << cut << " bytes was accepted";
    EXPECT_TRUE(ckpt.status().code() == StatusCode::kIOError ||
                ckpt.status().code() == StatusCode::kDataLoss)
        << "cut " << cut << ": " << ckpt.status();
  }
}

TEST(CheckpointTest, RandomSingleBitFlipsNeverCrashAndNeverPassSilently) {
  // Flip one bit at a time: the checksum (or header validation) must
  // catch every flip. Deterministically seeded positions spread over the
  // whole file, plus every byte of the 24-byte header.
  CheckpointFixture& shared = Shared();
  const std::string& bytes = shared.etm_bytes;
  util::Rng rng(20260806);
  std::vector<size_t> positions;
  for (size_t i = 0; i < 24; ++i) positions.push_back(i);
  for (int i = 0; i < 96; ++i) {
    positions.push_back(static_cast<size_t>(rng.UniformInt(bytes.size())));
  }
  for (size_t pos : positions) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << rng.UniformInt(8)));
    if (corrupt == bytes) continue;  // xor was a no-op (can't happen)
    const std::string path = WriteBytes("bitflip.ckpt", corrupt);
    util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(path);
    ASSERT_FALSE(ckpt.ok()) << "flip at byte " << pos << " was accepted";
  }
}

TEST(CheckpointTest, PayloadFlipIsDataLoss) {
  // A flip past the 24-byte header leaves the header intact, so the
  // checksum is what catches it.
  CheckpointFixture& shared = Shared();
  std::string corrupt = shared.etm_bytes;
  ASSERT_GT(corrupt.size(), 100u);
  corrupt[100] = static_cast<char>(corrupt[100] ^ 0x40);
  util::StatusOr<Checkpoint> ckpt =
      ReadCheckpoint(WriteBytes("payload_flip.ckpt", corrupt));
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, WrongMagicIsInvalidArgument) {
  CheckpointFixture& shared = Shared();
  std::string corrupt = shared.etm_bytes;
  corrupt[0] = 'X';
  util::StatusOr<Checkpoint> ckpt =
      ReadCheckpoint(WriteBytes("bad_magic.ckpt", corrupt));
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, FutureVersionIsFailedPrecondition) {
  CheckpointFixture& shared = Shared();
  std::string corrupt = shared.etm_bytes;
  const uint32_t future_version = kCheckpointVersion + 1;
  std::memcpy(&corrupt[4], &future_version, sizeof(future_version));
  util::StatusOr<Checkpoint> ckpt =
      ReadCheckpoint(WriteBytes("future_version.ckpt", corrupt));
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, TrailingGarbageIsDataLoss) {
  CheckpointFixture& shared = Shared();
  std::string corrupt = shared.etm_bytes + "extra bytes after the payload";
  util::StatusOr<Checkpoint> ckpt =
      ReadCheckpoint(WriteBytes("trailing.ckpt", corrupt));
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Format versioning: the v2 reader still accepts v1 files
// ---------------------------------------------------------------------------

// Downgrades a v2 file with no training state to the v1 wire format: the
// payload loses its trailing u32 has-training-state flag and the header
// is restamped (version, checksum, payload size).
std::string AsV1(const std::string& v2_bytes) {
  CHECK_GT(v2_bytes.size(), 28u);
  std::string v1 = v2_bytes.substr(0, v2_bytes.size() - 4);
  const uint32_t version = 1;
  std::memcpy(&v1[4], &version, sizeof(version));
  const uint64_t checksum = Fnv1a64(v1.data() + 24, v1.size() - 24);
  std::memcpy(&v1[8], &checksum, sizeof(checksum));
  const uint64_t payload_size = v1.size() - 24;
  std::memcpy(&v1[16], &payload_size, sizeof(payload_size));
  return v1;
}

TEST(CheckpointTest, V1FileStillReadsAndRestores) {
  CheckpointFixture& shared = Shared();
  const std::string path =
      WriteBytes("v1_compat.ckpt", AsV1(shared.etm_bytes));
  util::StatusOr<Checkpoint> v1 = ReadCheckpoint(path);
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_FALSE(v1->has_training_state);

  util::StatusOr<Checkpoint> v2 = ReadCheckpoint(shared.etm_path);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2->has_training_state);
  EXPECT_TRUE(TensorsBitwiseEqual(v1->beta, v2->beta));
  ASSERT_EQ(v1->tensors.size(), v2->tensors.size());
  for (size_t i = 0; i < v1->tensors.size(); ++i) {
    EXPECT_EQ(v1->tensors[i].first, v2->tensors[i].first);
    EXPECT_TRUE(
        TensorsBitwiseEqual(v1->tensors[i].second, v2->tensors[i].second));
  }
  util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> restored =
      RestoreModel(*v1);
  ASSERT_TRUE(restored.ok()) << restored.status();
}

TEST(CheckpointTest, BadTrainingStateFlagIsDataLoss) {
  // The v2 flag must be exactly 0 or 1; any other value means the file is
  // structurally corrupt even if the checksum was recomputed to match.
  CheckpointFixture& shared = Shared();
  std::string corrupt = shared.etm_bytes;
  const uint32_t bad_flag = 2;
  std::memcpy(&corrupt[corrupt.size() - 4], &bad_flag, sizeof(bad_flag));
  const uint64_t checksum = Fnv1a64(corrupt.data() + 24, corrupt.size() - 24);
  std::memcpy(&corrupt[8], &checksum, sizeof(checksum));
  util::StatusOr<Checkpoint> ckpt =
      ReadCheckpoint(WriteBytes("bad_flag.ckpt", corrupt));
  ASSERT_FALSE(ckpt.ok());
  EXPECT_EQ(ckpt.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Atomic writes
// ---------------------------------------------------------------------------

TEST(CheckpointTest, InjectedWriteFaultNeverClobbersTheOldFile) {
  CheckpointFixture& shared = Shared();
  util::FaultInjector& faults = util::FaultInjector::Global();
  faults.Reset();
  const std::string path = WriteBytes("atomic_target.ckpt", shared.etm_bytes);
  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();

  // The "checkpoint.write" site fires after the temp file is written but
  // before the rename -- the worst possible crash point.
  util::FaultSpec spec;
  spec.every_nth = 1;
  spec.max_fires = 1;
  faults.Arm("checkpoint.write", spec);
  util::Status failed = WriteCheckpoint(*ckpt, path);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIOError);

  // The destination still holds the old, fully valid bytes, and the temp
  // file was cleaned up.
  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, shared.etm_bytes);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  // The fault schedule is exhausted: a retry succeeds end to end.
  util::Status retried = WriteCheckpoint(*ckpt, path);
  EXPECT_TRUE(retried.ok()) << retried;
  EXPECT_TRUE(ReadCheckpoint(path).ok());
  faults.Reset();
}

// ---------------------------------------------------------------------------
// RestoreModel error cases (structurally valid checkpoints that do not
// match any live architecture)
// ---------------------------------------------------------------------------

TEST(CheckpointTest, UnknownModelTypeIsFailedPrecondition) {
  CheckpointFixture& shared = Shared();
  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(shared.etm_path);
  ASSERT_TRUE(ckpt.ok());
  ckpt->descriptor.type = "hypothetical-future-model";
  util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> restored =
      RestoreModel(*ckpt);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, MissingTensorIsFailedPrecondition) {
  CheckpointFixture& shared = Shared();
  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(shared.etm_path);
  ASSERT_TRUE(ckpt.ok());
  ASSERT_FALSE(ckpt->tensors.empty());
  ckpt->tensors.pop_back();
  util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> restored =
      RestoreModel(*ckpt);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, TensorShapeDriftIsFailedPrecondition) {
  CheckpointFixture& shared = Shared();
  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(shared.etm_path);
  ASSERT_TRUE(ckpt.ok());
  ASSERT_FALSE(ckpt->tensors.empty());
  const Tensor& first = ckpt->tensors[0].second;
  ckpt->tensors[0].second = Tensor(first.rows() + 1, first.cols());
  util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> restored =
      RestoreModel(*ckpt);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RenamedTensorIsFailedPrecondition) {
  CheckpointFixture& shared = Shared();
  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(shared.etm_path);
  ASSERT_TRUE(ckpt.ok());
  ASSERT_FALSE(ckpt->tensors.empty());
  ckpt->tensors[0].first = "no_such_layer.weight";
  util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> restored =
      RestoreModel(*ckpt);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, ResumeModelWithoutTrainingStateIsFailedPrecondition) {
  // A final (v2, no-training-state) checkpoint serves but cannot resume.
  CheckpointFixture& shared = Shared();
  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(shared.etm_path);
  ASSERT_TRUE(ckpt.ok());
  util::StatusOr<std::unique_ptr<topicmodel::NeuralTopicModel>> resumed =
      ResumeModel(*ckpt);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace serve
}  // namespace contratopic
