// Golden-file regression test: a tiny ETM checkpoint trained on the
// 20ng-sim synthetic preset is committed under tests/data/. Loading it
// must keep working across refactors, its topics must keep their exact
// top words, and its interpretability metrics must stay put. If the
// checkpoint format or training pipeline changes intentionally,
// regenerate with:
//
//   CT_REGEN_GOLDEN=1 ./ct_tests --gtest_filter='GoldenCheckpointTest.*'
//
// and paste the printed constants below.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"
#include "text/synthetic.h"
#include "util/status.h"

namespace contratopic {
namespace serve {
namespace {

const char* kGoldenPath = CT_TEST_DATA_DIR "/golden_etm_20ng.ckpt";

// Recorded when the golden file was generated (see header comment).
constexpr int kGoldenTopics = 8;
constexpr int kGoldenVocab = 1185;
constexpr double kGoldenCoherence = -0.077282751848;
constexpr double kGoldenDiversity = 0.690000000000;
const std::vector<std::string>& GoldenTopic0Words() {
  static const std::vector<std::string>* words = new std::vector<std::string>{
      "images",  "pitcher",   "rocket",  "encryption", "wrestler",
      "bg_word056", "symptoms", "picture", "image",      "satellite",
  };
  return *words;
}

text::SyntheticDataset GoldenDataset() {
  return text::GenerateSynthetic(text::Preset20NG(0.15));
}

topicmodel::TrainConfig GoldenConfig() {
  topicmodel::TrainConfig config;
  config.num_topics = kGoldenTopics;
  config.epochs = 3;
  config.batch_size = 128;
  config.encoder_hidden = 32;
  config.encoder_layers = 1;
  return config;
}

// Training-side metrics for the checkpointed beta, recomputed from the
// (deterministically regenerated) dataset.
struct GoldenMetrics {
  double coherence;
  double diversity;
};

GoldenMetrics ComputeMetrics(const tensor::Tensor& beta,
                             const text::BowCorpus& test) {
  const eval::NpmiMatrix npmi = eval::NpmiMatrix::Compute(test);
  const std::vector<double> per_topic = eval::PerTopicCoherence(beta, npmi);
  return {eval::CoherenceAtProportion(per_topic, 1.0),
          eval::DiversityAtProportion(beta, per_topic, 1.0)};
}

TEST(GoldenCheckpointTest, GoldenFileStaysServable) {
  const text::SyntheticDataset dataset = GoldenDataset();

  if (std::getenv("CT_REGEN_GOLDEN") != nullptr) {
    embed::WordEmbeddings embeddings =
        embed::WordEmbeddings::Train(dataset.train, [] {
          embed::EmbeddingConfig c;
          c.dimension = 24;
          return c;
        }());
    auto model = core::CreateModel("etm", GoldenConfig(), embeddings);
    model->Train(dataset.train);
    util::Status saved =
        SaveCheckpoint(*model, dataset.train.vocab(), kGoldenPath);
    ASSERT_TRUE(saved.ok()) << saved;
    const GoldenMetrics metrics =
        ComputeMetrics(model->Beta(), dataset.test);
    util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(kGoldenPath);
    ASSERT_TRUE(ckpt.ok());
    printf("kGoldenTopics = %d\nkGoldenVocab = %d\n",
           ckpt->descriptor.config.num_topics, ckpt->descriptor.vocab_size);
    printf("kGoldenCoherence = %.12f\nkGoldenDiversity = %.12f\n",
           metrics.coherence, metrics.diversity);
    printf("GoldenTopic0Words:\n");
    for (int id : ckpt->beta.TopKIndicesOfRow(0, 10)) {
      printf("  \"%s\",\n", ckpt->vocab[id].c_str());
    }
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(kGoldenPath);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_EQ(ckpt->descriptor.type, "etm");
  EXPECT_EQ(ckpt->descriptor.config.num_topics, kGoldenTopics);
  EXPECT_EQ(ckpt->descriptor.vocab_size, kGoldenVocab);

  // The synthetic generator is seeded, so the regenerated vocabulary must
  // line up with the committed checkpoint's word ids.
  ASSERT_EQ(dataset.train.vocab().size(), ckpt->descriptor.vocab_size);
  for (int i = 0; i < dataset.train.vocab().size(); ++i) {
    ASSERT_EQ(dataset.train.vocab().Word(i), ckpt->vocab[i]) << "word " << i;
  }

  // Exact top-word regression for topic 0.
  const std::vector<int> top_ids = ckpt->beta.TopKIndicesOfRow(0, 10);
  ASSERT_EQ(GoldenTopic0Words().size(), top_ids.size());
  for (size_t i = 0; i < top_ids.size(); ++i) {
    EXPECT_EQ(ckpt->vocab[top_ids[i]], GoldenTopic0Words()[i])
        << "topic 0 word " << i;
  }

  // Interpretability metrics of the frozen beta are pure arithmetic over
  // committed bytes and a deterministic corpus: tight tolerance.
  const GoldenMetrics metrics = ComputeMetrics(ckpt->beta, dataset.test);
  EXPECT_NEAR(metrics.coherence, kGoldenCoherence, 1e-6);
  EXPECT_NEAR(metrics.diversity, kGoldenDiversity, 1e-6);

  // And the committed file still serves.
  auto engine = InferenceEngine::Load(kGoldenPath);
  ASSERT_TRUE(engine.ok()) << engine.status();
  const text::Document& doc = dataset.test.doc(0);
  InferenceEngine::BowDoc bow;
  for (const auto& e : doc.entries) bow.emplace_back(e.word_id, e.count);
  InferenceEngine::ThetaResult theta = (*engine)->InferTheta(bow);
  ASSERT_TRUE(theta.ok()) << theta.status();
  double sum = 0.0;
  for (float t : *theta) {
    EXPECT_GE(t, 0.0f);
    sum += t;
  }
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

}  // namespace
}  // namespace serve
}  // namespace contratopic
