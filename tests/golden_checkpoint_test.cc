// Golden-file regression test: a tiny ETM checkpoint trained on the
// 20ng-sim synthetic preset is committed under tests/data/. Loading it
// must keep working across refactors, its topics must keep their exact
// top words, and its interpretability metrics must stay put. If the
// checkpoint format or training pipeline changes intentionally,
// regenerate with:
//
//   CT_REGEN_GOLDEN=1 ./ct_tests --gtest_filter='GoldenCheckpointTest.*'
//
// and paste the printed constants below.

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_zoo.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"
#include "tensor/quant.h"
#include "text/synthetic.h"
#include "util/status.h"

namespace contratopic {
namespace serve {
namespace {

const char* kGoldenPath = CT_TEST_DATA_DIR "/golden_etm_20ng.ckpt";

// Recorded when the golden file was generated (see header comment).
constexpr int kGoldenTopics = 8;
constexpr int kGoldenVocab = 1185;
constexpr double kGoldenCoherence = -0.077282751848;
constexpr double kGoldenDiversity = 0.690000000000;
const std::vector<std::string>& GoldenTopic0Words() {
  static const std::vector<std::string>* words = new std::vector<std::string>{
      "images",  "pitcher",   "rocket",  "encryption", "wrestler",
      "bg_word056", "symptoms", "picture", "image",      "satellite",
  };
  return *words;
}

text::SyntheticDataset GoldenDataset() {
  return text::GenerateSynthetic(text::Preset20NG(0.15));
}

topicmodel::TrainConfig GoldenConfig() {
  topicmodel::TrainConfig config;
  config.num_topics = kGoldenTopics;
  config.epochs = 3;
  config.batch_size = 128;
  config.encoder_hidden = 32;
  config.encoder_layers = 1;
  return config;
}

// Training-side metrics for the checkpointed beta, recomputed from the
// (deterministically regenerated) dataset.
struct GoldenMetrics {
  double coherence;
  double diversity;
};

GoldenMetrics ComputeMetrics(const tensor::Tensor& beta,
                             const text::BowCorpus& test) {
  const eval::NpmiMatrix npmi = eval::NpmiMatrix::Compute(test);
  const std::vector<double> per_topic = eval::PerTopicCoherence(beta, npmi);
  return {eval::CoherenceAtProportion(per_topic, 1.0),
          eval::DiversityAtProportion(beta, per_topic, 1.0)};
}

TEST(GoldenCheckpointTest, GoldenFileStaysServable) {
  const text::SyntheticDataset dataset = GoldenDataset();

  if (std::getenv("CT_REGEN_GOLDEN") != nullptr) {
    embed::WordEmbeddings embeddings =
        embed::WordEmbeddings::Train(dataset.train, [] {
          embed::EmbeddingConfig c;
          c.dimension = 24;
          return c;
        }());
    auto model = core::CreateModel("etm", GoldenConfig(), embeddings);
    model->Train(dataset.train);
    util::Status saved =
        SaveCheckpoint(*model, dataset.train.vocab(), kGoldenPath);
    ASSERT_TRUE(saved.ok()) << saved;
    const GoldenMetrics metrics =
        ComputeMetrics(model->Beta(), dataset.test);
    util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(kGoldenPath);
    ASSERT_TRUE(ckpt.ok());
    printf("kGoldenTopics = %d\nkGoldenVocab = %d\n",
           ckpt->descriptor.config.num_topics, ckpt->descriptor.vocab_size);
    printf("kGoldenCoherence = %.12f\nkGoldenDiversity = %.12f\n",
           metrics.coherence, metrics.diversity);
    printf("GoldenTopic0Words:\n");
    for (int id : ckpt->beta.TopKIndicesOfRow(0, 10)) {
      printf("  \"%s\",\n", ckpt->vocab[id].c_str());
    }
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(kGoldenPath);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_EQ(ckpt->descriptor.type, "etm");
  EXPECT_EQ(ckpt->descriptor.config.num_topics, kGoldenTopics);
  EXPECT_EQ(ckpt->descriptor.vocab_size, kGoldenVocab);

  // The synthetic generator is seeded, so the regenerated vocabulary must
  // line up with the committed checkpoint's word ids.
  ASSERT_EQ(dataset.train.vocab().size(), ckpt->descriptor.vocab_size);
  for (int i = 0; i < dataset.train.vocab().size(); ++i) {
    ASSERT_EQ(dataset.train.vocab().Word(i), ckpt->vocab[i]) << "word " << i;
  }

  // Exact top-word regression for topic 0.
  const std::vector<int> top_ids = ckpt->beta.TopKIndicesOfRow(0, 10);
  ASSERT_EQ(GoldenTopic0Words().size(), top_ids.size());
  for (size_t i = 0; i < top_ids.size(); ++i) {
    EXPECT_EQ(ckpt->vocab[top_ids[i]], GoldenTopic0Words()[i])
        << "topic 0 word " << i;
  }

  // Interpretability metrics of the frozen beta are pure arithmetic over
  // committed bytes and a deterministic corpus: tight tolerance.
  const GoldenMetrics metrics = ComputeMetrics(ckpt->beta, dataset.test);
  EXPECT_NEAR(metrics.coherence, kGoldenCoherence, 1e-6);
  EXPECT_NEAR(metrics.diversity, kGoldenDiversity, 1e-6);

  // And the committed file still serves.
  auto engine = InferenceEngine::Load(kGoldenPath);
  ASSERT_TRUE(engine.ok()) << engine.status();
  const text::Document& doc = dataset.test.doc(0);
  InferenceEngine::BowDoc bow;
  for (const auto& e : doc.entries) bow.emplace_back(e.word_id, e.count);
  InferenceEngine::ThetaResult theta = (*engine)->InferTheta(bow);
  ASSERT_TRUE(theta.ok()) << theta.status();
  double sum = 0.0;
  for (float t : *theta) {
    EXPECT_GE(t, 0.0f);
    sum += t;
  }
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

// ---------------------------------------------------------------------------
// Corruption fuzzing of quantized (v3) checkpoints, derived from the
// committed golden file: truncation is kIOError, any payload bit flip is
// kDataLoss (checksum), and scale-table corruption that a forged checksum
// would otherwise hide is still kDataLoss from structural validation.
// A corrupt quantized checkpoint must never load -- so it can never serve
// garbage top-words.
// ---------------------------------------------------------------------------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;  // magic|version|sum|size

// Restores header/payload consistency after a deliberate payload edit, so
// the test reaches the structural validators behind the checksum.
void ForgeChecksum(std::string* bytes) {
  const uint64_t sum = Fnv1a64(bytes->data() + kHeaderBytes,
                               bytes->size() - kHeaderBytes);
  std::memcpy(bytes->data() + 8, &sum, sizeof(sum));
}

// Writes a quantized copy of the committed golden checkpoint to a temp
// path and returns its bytes.
std::string BuildQuantizedGolden(tensor::ServePrecision storage,
                                 const std::string& path) {
  util::StatusOr<Checkpoint> golden = ReadCheckpoint(kGoldenPath);
  EXPECT_TRUE(golden.ok()) << golden.status();
  Checkpoint quantized = *golden;
  quantized.storage_precision = storage;
  const util::Status written = WriteCheckpoint(quantized, path);
  EXPECT_TRUE(written.ok()) << written;
  return ReadFileBytes(path);
}

TEST(GoldenCheckpointTest, QuantizedTruncationAndBitFlipsAreDetected) {
  for (tensor::ServePrecision storage :
       {tensor::ServePrecision::kBf16, tensor::ServePrecision::kInt8}) {
    const std::string name = tensor::ServePrecisionName(storage);
    const std::string path =
        ::testing::TempDir() + "/golden_quant_" + name + ".ckpt";
    const std::string bytes = BuildQuantizedGolden(storage, path);
    ASSERT_GT(bytes.size(), kHeaderBytes);

    // The intact file loads and reports its storage precision.
    util::StatusOr<Checkpoint> intact = ReadCheckpoint(path);
    ASSERT_TRUE(intact.ok()) << intact.status();
    EXPECT_EQ(intact->storage_precision, storage);

    const std::string mutant = path + ".mut";
    // Truncation at 16 spread cut points (including inside the header).
    for (int i = 0; i < 16; ++i) {
      const size_t cut = bytes.size() * static_cast<size_t>(i) / 16;
      WriteFileBytes(mutant, bytes.substr(0, cut));
      util::StatusOr<Checkpoint> got = ReadCheckpoint(mutant);
      ASSERT_FALSE(got.ok()) << name << " truncated to " << cut;
      EXPECT_EQ(got.status().code(), util::StatusCode::kIOError)
          << name << " truncated to " << cut << ": " << got.status();
    }
    // Single bit flips across the payload (scale tables included): the
    // checksum catches every one as kDataLoss before any field is
    // trusted.
    for (int i = 0; i < 32; ++i) {
      const size_t payload = bytes.size() - kHeaderBytes;
      const size_t off =
          kHeaderBytes + payload * static_cast<size_t>(i) / 32;
      std::string flipped = bytes;
      flipped[off] = static_cast<char>(flipped[off] ^ (1 << (i % 8)));
      WriteFileBytes(mutant, flipped);
      util::StatusOr<Checkpoint> got = ReadCheckpoint(mutant);
      ASSERT_FALSE(got.ok()) << name << " bit flip at " << off;
      EXPECT_EQ(got.status().code(), util::StatusCode::kDataLoss)
          << name << " bit flip at " << off << ": " << got.status();
      // A corrupt file never reaches the engine either.
      EXPECT_FALSE(InferenceEngine::Load(mutant).ok());
    }
    // A version byte flip is version skew, not a crash.
    std::string versioned = bytes;
    versioned[4] = static_cast<char>(0x7F);
    WriteFileBytes(mutant, versioned);
    util::StatusOr<Checkpoint> skewed = ReadCheckpoint(mutant);
    ASSERT_FALSE(skewed.ok());
    EXPECT_EQ(skewed.status().code(), util::StatusCode::kFailedPrecondition);
  }
}

TEST(GoldenCheckpointTest, Int8ScaleTableCorruptionIsDataLossNotGarbage) {
  // Forge the checksum so corruption reaches the structural validators:
  // even an adversarially consistent file must fail closed on a broken
  // scale table instead of dequantizing garbage weights.
  const std::string path = ::testing::TempDir() + "/golden_scales.ckpt";
  const std::string bytes =
      BuildQuantizedGolden(tensor::ServePrecision::kInt8, path);

  util::StatusOr<Checkpoint> golden = ReadCheckpoint(kGoldenPath);
  ASSERT_TRUE(golden.ok());
  // Locate the first int8 tensor record by its unambiguous header
  // pattern: dtype tag 2, rows, cols, then the u64 scale count (== rows).
  size_t record = std::string::npos;
  uint32_t rows = 0;
  for (const auto& [tensor_name, t] : golden->tensors) {
    if (!tensor::QuantizableShape(t.rows(), t.cols())) continue;
    std::string pattern(20, '\0');
    const uint32_t tag = 2;
    const uint32_t r32 = static_cast<uint32_t>(t.rows());
    const uint32_t c32 = static_cast<uint32_t>(t.cols());
    const uint64_t count = static_cast<uint64_t>(t.rows());
    std::memcpy(pattern.data(), &tag, 4);
    std::memcpy(pattern.data() + 4, &r32, 4);
    std::memcpy(pattern.data() + 8, &c32, 4);
    std::memcpy(pattern.data() + 12, &count, 8);
    record = bytes.find(pattern);
    if (record != std::string::npos) {
      rows = r32;
      break;
    }
  }
  ASSERT_NE(record, std::string::npos)
      << "no int8 tensor record found in the quantized golden file";

  const std::string mutant = path + ".mut";
  struct Case {
    const char* what;
    size_t offset;      // relative to the record start
    std::string bytes;  // replacement
  };
  const uint64_t bad_count = static_cast<uint64_t>(rows) + 1;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float negative = -1.0f;
  std::vector<Case> cases;
  cases.push_back({"scale count off by one", 12,
                   std::string(reinterpret_cast<const char*>(&bad_count),
                               sizeof(bad_count))});
  cases.push_back({"NaN scale", 20,
                   std::string(reinterpret_cast<const char*>(&nan),
                               sizeof(nan))});
  cases.push_back({"negative scale", 20,
                   std::string(reinterpret_cast<const char*>(&negative),
                               sizeof(negative))});
  for (const Case& c : cases) {
    std::string forged = bytes;
    forged.replace(record + c.offset, c.bytes.size(), c.bytes);
    ForgeChecksum(&forged);
    WriteFileBytes(mutant, forged);
    util::StatusOr<Checkpoint> got = ReadCheckpoint(mutant);
    ASSERT_FALSE(got.ok()) << c.what << " was accepted";
    EXPECT_EQ(got.status().code(), util::StatusCode::kDataLoss)
        << c.what << ": " << got.status();
    EXPECT_FALSE(InferenceEngine::Load(mutant).ok()) << c.what;
  }
}

// ---------------------------------------------------------------------------
// Contrastive zoo coverage (CLNTM / TSCTM): the model-zoo expansion rides
// the same serving contracts as the golden ETM. Each new model must
// round-trip bitwise at full precision, round-trip per quantized storage
// tier, and fail closed (kIOError / kDataLoss) on the same corruption
// grid the golden file is fuzzed with -- trained fresh at test time since
// only the ETM checkpoint is committed.
// ---------------------------------------------------------------------------

class ContrastiveZooCheckpointTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ContrastiveZooCheckpointTest, RoundTripsPerTierAndFailsClosed) {
  const std::string name = GetParam();
  const text::SyntheticDataset dataset = GoldenDataset();
  embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(dataset.train, [] {
        embed::EmbeddingConfig c;
        c.dimension = 24;
        return c;
      }());
  auto model = core::CreateModel(name, GoldenConfig(), embeddings);
  model->Train(dataset.train);
  const tensor::Tensor reference_theta = model->InferTheta(dataset.test);
  const std::string stem =
      ::testing::TempDir() + "/zoo_" + name + "_" + std::to_string(::getpid());

  // Full-precision round trip: the restored model serves bitwise.
  const std::string fp32_path = stem + "_fp32.ckpt";
  ASSERT_TRUE(
      SaveCheckpoint(*model, dataset.train.vocab(), fp32_path).ok());
  util::StatusOr<Checkpoint> ckpt = ReadCheckpoint(fp32_path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status();
  EXPECT_EQ(ckpt->descriptor.type, name);
  auto restored = RestoreModel(*ckpt);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const tensor::Tensor restored_theta =
      (*restored)->InferTheta(dataset.test);
  ASSERT_TRUE(restored_theta.same_shape(reference_theta));
  for (int64_t i = 0; i < restored_theta.numel(); ++i) {
    ASSERT_EQ(restored_theta.data()[i], reference_theta.data()[i])
        << name << " theta element " << i;
  }

  for (tensor::ServePrecision storage :
       {tensor::ServePrecision::kBf16, tensor::ServePrecision::kInt8}) {
    const std::string tier = tensor::ServePrecisionName(storage);
    const std::string path = stem + "_" + tier + ".ckpt";
    ASSERT_TRUE(SaveQuantizedCheckpoint(*model, dataset.train.vocab(), path,
                                        storage)
                    .ok());

    // The intact quantized file loads, reports its tier, and serves.
    util::StatusOr<Checkpoint> quant = ReadCheckpoint(path);
    ASSERT_TRUE(quant.ok()) << name << " " << tier << ": " << quant.status();
    EXPECT_EQ(quant->storage_precision, storage);
    auto engine = InferenceEngine::Load(path);
    ASSERT_TRUE(engine.ok()) << name << " " << tier << ": "
                             << engine.status();

    // Corruption fuzz, same grid as the golden file: truncation is
    // kIOError, any payload bit flip is kDataLoss, and neither ever
    // reaches the engine.
    const std::string bytes = ReadFileBytes(path);
    ASSERT_GT(bytes.size(), kHeaderBytes);
    const std::string mutant = path + ".mut";
    for (int i = 0; i < 8; ++i) {
      const size_t cut = bytes.size() * static_cast<size_t>(i) / 8;
      WriteFileBytes(mutant, bytes.substr(0, cut));
      util::StatusOr<Checkpoint> got = ReadCheckpoint(mutant);
      ASSERT_FALSE(got.ok()) << name << " " << tier << " truncated to "
                             << cut;
      EXPECT_EQ(got.status().code(), util::StatusCode::kIOError)
          << name << " " << tier << " truncated to " << cut << ": "
          << got.status();
    }
    for (int i = 0; i < 16; ++i) {
      const size_t payload = bytes.size() - kHeaderBytes;
      const size_t off = kHeaderBytes + payload * static_cast<size_t>(i) / 16;
      std::string flipped = bytes;
      flipped[off] = static_cast<char>(flipped[off] ^ (1 << (i % 8)));
      WriteFileBytes(mutant, flipped);
      util::StatusOr<Checkpoint> got = ReadCheckpoint(mutant);
      ASSERT_FALSE(got.ok()) << name << " " << tier << " bit flip at "
                             << off;
      EXPECT_EQ(got.status().code(), util::StatusCode::kDataLoss)
          << name << " " << tier << " bit flip at " << off << ": "
          << got.status();
      EXPECT_FALSE(InferenceEngine::Load(mutant).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NewModels, ContrastiveZooCheckpointTest,
                         ::testing::Values("clntm", "tsctm"),
                         [](const ::testing::TestParamInfo<std::string>&
                                info) { return info.param; });

}  // namespace
}  // namespace serve
}  // namespace contratopic
