#include <cmath>

#include <gtest/gtest.h>

#include "embed/cooccurrence.h"
#include "embed/svd.h"
#include "embed/word_embeddings.h"
#include "tensor/kernels.h"
#include "text/synthetic.h"

namespace contratopic {
namespace embed {
namespace {

using tensor::Tensor;

text::BowCorpus TinyCorpus() {
  // Two word clusters: {a,b,c} co-occur, {x,y,z} co-occur.
  text::Vocabulary vocab;
  for (const char* w : {"a", "b", "c", "x", "y", "z"}) vocab.AddWord(w);
  std::vector<text::Document> docs;
  for (int i = 0; i < 20; ++i) {
    text::Document d;
    if (i % 2 == 0) {
      d.entries = {{0, 2}, {1, 1}, {2, 1}};
    } else {
      d.entries = {{3, 2}, {4, 1}, {5, 1}};
    }
    docs.push_back(d);
  }
  return text::BowCorpus(std::move(vocab), std::move(docs));
}

TEST(CooccurrenceTest, PresenceCountsPairs) {
  CooccurrenceCounts counts(6);
  counts.AddPresence(TinyCorpus());
  EXPECT_EQ(counts.num_docs(), 20);
  EXPECT_DOUBLE_EQ(counts.pair(0, 1), 10.0);  // a,b in 10 docs.
  EXPECT_DOUBLE_EQ(counts.pair(0, 3), 0.0);   // a,x never together.
  EXPECT_DOUBLE_EQ(counts.marginal(0), 10.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(counts.pair(1, 0), counts.pair(0, 1));
}

TEST(CooccurrenceTest, WeightedCountsUseTermFrequencies) {
  CooccurrenceCounts counts(6);
  counts.AddWeighted(TinyCorpus());
  // a (count 2) with b (count 1), 10 docs: 2*1*10 = 20.
  EXPECT_DOUBLE_EQ(counts.pair(0, 1), 20.0);
}

TEST(PpmiTest, PositiveForAssociatedPairsZeroForUnrelated) {
  CooccurrenceCounts counts(6);
  counts.AddWeighted(TinyCorpus());
  const Tensor ppmi = PpmiMatrix(counts, 0.1);
  EXPECT_GT(ppmi.at(0, 1), 0.0f);  // a-b associated.
  EXPECT_FLOAT_EQ(ppmi.at(0, 3), 0.0f);  // a-x unrelated -> clipped.
  // Symmetric.
  EXPECT_FLOAT_EQ(ppmi.at(1, 0), ppmi.at(0, 1));
}

TEST(JacobiEigenTest, RecoversKnownSpectrum) {
  // Symmetric matrix with known eigenvalues {3, 1}: [[2,1],[1,2]].
  Tensor m(2, 2, {2, 1, 1, 2});
  const SymmetricEigen eigen = JacobiEigen(m);
  ASSERT_EQ(eigen.eigenvalues.size(), 2u);
  EXPECT_NEAR(eigen.eigenvalues[0], 3.0f, 1e-4f);
  EXPECT_NEAR(eigen.eigenvalues[1], 1.0f, 1e-4f);
  // First eigenvector proportional to (1, 1)/sqrt(2).
  EXPECT_NEAR(std::fabs(eigen.eigenvectors.at(0, 0)),
              std::fabs(eigen.eigenvectors.at(0, 1)), 1e-4f);
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  util::Rng rng(3);
  Tensor m = Tensor::RandNormal(6, 6, rng);
  // Symmetrize.
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      const float avg = 0.5f * (m.at(i, j) + m.at(j, i));
      m.at(i, j) = avg;
      m.at(j, i) = avg;
    }
  }
  const SymmetricEigen eigen = JacobiEigen(m);
  // Reconstruct sum_i lambda_i v_i v_i^T.
  Tensor recon(6, 6);
  for (int e = 0; e < 6; ++e) {
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) {
        recon.at(i, j) += eigen.eigenvalues[e] *
                          eigen.eigenvectors.at(e, i) *
                          eigen.eigenvectors.at(e, j);
      }
    }
  }
  EXPECT_TRUE(tensor::AllClose(recon, m, 1e-3f));
}

TEST(OrthonormalizeTest, ProducesOrthonormalColumns) {
  util::Rng rng(4);
  Tensor m = Tensor::RandNormal(20, 5, rng);
  OrthonormalizeColumns(&m, rng);
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      double dot = 0.0;
      for (int r = 0; r < 20; ++r) {
        dot += static_cast<double>(m.at(r, a)) * m.at(r, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-4) << a << "," << b;
    }
  }
}

TEST(TruncatedEigenTest, MatchesJacobiOnTopEigenpairs) {
  util::Rng rng(5);
  // Build a PSD matrix A = B B^T.
  const Tensor b = Tensor::RandNormal(30, 30, rng);
  const Tensor a = tensor::MatMulNew(b, false, b, true);
  const SymmetricEigen full = JacobiEigen(a, 100);
  util::Rng rng2(6);
  const TruncatedEigen truncated = TruncatedSymmetricEigen(a, 4, rng2, 12);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(truncated.eigenvalues[i], full.eigenvalues[i],
                0.02f * std::fabs(full.eigenvalues[0]))
        << "eigenvalue " << i;
  }
}

TEST(WordEmbeddingsTest, ClusterStructureSurvivesFactorization) {
  EmbeddingConfig config;
  config.dimension = 3;
  const WordEmbeddings embeddings = WordEmbeddings::Train(TinyCorpus(), config);
  EXPECT_EQ(embeddings.vocab_size(), 6);
  EXPECT_EQ(embeddings.dimension(), 3);
  // Within-cluster cosine must exceed cross-cluster cosine.
  EXPECT_GT(embeddings.Cosine(0, 1), embeddings.Cosine(0, 3));
  EXPECT_GT(embeddings.Cosine(3, 4), embeddings.Cosine(4, 2));
}

TEST(WordEmbeddingsTest, NearestNeighborsInCluster) {
  EmbeddingConfig config;
  config.dimension = 3;
  const WordEmbeddings embeddings = WordEmbeddings::Train(TinyCorpus(), config);
  const auto neighbors = embeddings.NearestNeighbors(0, 2);  // "a"
  ASSERT_EQ(neighbors.size(), 2u);
  // Both nearest neighbors of "a" are from {b, c} = ids {1, 2}.
  for (int n : neighbors) {
    EXPECT_TRUE(n == 1 || n == 2) << "neighbor " << n;
  }
}

TEST(WordEmbeddingsTest, SaveLoadRoundTrip) {
  EmbeddingConfig config;
  config.dimension = 4;
  const WordEmbeddings original = WordEmbeddings::Train(TinyCorpus(), config);
  const std::string path = ::testing::TempDir() + "/ct_embeddings_test.bin";
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = WordEmbeddings::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->vocab_size(), original.vocab_size());
  EXPECT_EQ(loaded->words()[2], original.words()[2]);
  EXPECT_TRUE(tensor::AllClose(loaded->vectors(), original.vectors()));
}

TEST(WordEmbeddingsTest, SyntheticThemesClusterInEmbeddingSpace) {
  // Words of the same theme should be mutual near-neighbors after PPMI-SVD
  // on a synthetic corpus.
  text::SyntheticDataset dataset =
      text::GenerateSynthetic(text::Preset20NG(0.25));
  EmbeddingConfig config;
  config.dimension = 32;
  const WordEmbeddings embeddings =
      WordEmbeddings::Train(dataset.train, config);
  const int space = dataset.train.vocab().GetId("space");
  const int nasa = dataset.train.vocab().GetId("nasa");
  const int cup = dataset.train.vocab().GetId("cup");
  ASSERT_GE(space, 0);
  ASSERT_GE(nasa, 0);
  ASSERT_GE(cup, 0);
  EXPECT_GT(embeddings.Cosine(space, nasa), embeddings.Cosine(space, cup));
}

}  // namespace
}  // namespace embed
}  // namespace contratopic
