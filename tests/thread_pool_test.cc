// Stress and policy tests for util::ThreadPool and util/parallel.h
// (ISSUE: satellite #2 and #4 of the parallel-engine PR).

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace util {
namespace {

TEST(NumChunksPolicyTest, PinsTheSingleChunkingPolicy) {
  // Empty / negative ranges never produce work.
  EXPECT_EQ(ThreadPool::NumChunks(0, 1024, 8), 0);
  EXPECT_EQ(ThreadPool::NumChunks(-5, 1024, 8), 0);
  // A single worker always gets a single inline chunk.
  EXPECT_EQ(ThreadPool::NumChunks(1 << 20, 1024, 1), 1);
  EXPECT_EQ(ThreadPool::NumChunks(1 << 20, 1024, 0), 1);
  // Ranges below one grain stay unsplit regardless of workers.
  EXPECT_EQ(ThreadPool::NumChunks(100, 1024, 8), 1);
  EXPECT_EQ(ThreadPool::NumChunks(1023, 1024, 8), 1);
  // In between: one chunk per full grain...
  EXPECT_EQ(ThreadPool::NumChunks(5000, 1024, 8), 4);
  // ...capped at the worker count.
  EXPECT_EQ(ThreadPool::NumChunks(8 * 1024, 1024, 8), 8);
  EXPECT_EQ(ThreadPool::NumChunks(100000, 1024, 8), 8);
  // Expensive items (grain 1) split all the way to the worker cap.
  EXPECT_EQ(ThreadPool::NumChunks(3, 1, 8), 3);
  EXPECT_EQ(ThreadPool::NumChunks(64, 1, 8), 8);
}

TEST(FixedGridChunksTest, DependsOnRangeOnly) {
  EXPECT_EQ(FixedGridChunks(0, 256), 0);
  EXPECT_EQ(FixedGridChunks(1, 256), 1);
  EXPECT_EQ(FixedGridChunks(256, 256), 1);
  EXPECT_EQ(FixedGridChunks(257, 256), 2);
  EXPECT_EQ(FixedGridChunks(1000, 256), 4);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, RangeBelowGrainRunsInlineOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;  // Unsynchronized on purpose: must run on this thread.
  int64_t seen_lo = -1, seen_hi = -1;
  pool.ParallelFor(
      3, 10,
      [&](int64_t lo, int64_t hi) {
        ++calls;
        seen_lo = lo;
        seen_hi = hi;
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_FALSE(pool.InWorkerThread());
      },
      /*grain=*/1024);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 3);
  EXPECT_EQ(seen_hi, 10);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 100000;
  std::vector<int> hits(kN, 0);
  pool.ParallelFor(
      0, kN,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) ++hits[i];
      },
      /*grain=*/1024);
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineOnWorker) {
  ThreadPool pool(4);
  std::atomic<int> outer_calls{0};
  std::atomic<int> inner_calls{0};
  std::atomic<int> inner_chunks_off_worker{0};
  pool.ParallelFor(
      0, 4,
      [&](int64_t lo, int64_t hi) {
        ++outer_calls;
        const std::thread::id outer_thread = std::this_thread::get_id();
        const bool on_worker = pool.InWorkerThread();
        // The inner loop is large enough that, were it scheduled, it would
        // split across workers; from a worker it must run inline instead.
        pool.ParallelFor(
            0, 1 << 16,
            [&](int64_t, int64_t) {
              ++inner_calls;
              if (on_worker &&
                  std::this_thread::get_id() != outer_thread) {
                ++inner_chunks_off_worker;
              }
            },
            /*grain=*/1024);
        (void)lo;
        (void)hi;
      },
      /*grain=*/1);
  EXPECT_EQ(outer_calls.load(), 4);
  EXPECT_GE(inner_calls.load(), 4);
  // Nested sections never hop to another worker.
  EXPECT_EQ(inner_chunks_off_worker.load(), 0);
}

TEST(ThreadPoolTest, ManyTinyTasksAllRun) {
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Schedule([&done] { ++done; });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), kTasks);
  // Wait() with an empty queue returns immediately.
  pool.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, ManySmallParallelForsBackToBack) {
  ThreadPool pool(4);
  int64_t total = 0;  // Main-thread only: accumulated between loops.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(
        0, 64,
        [&](int64_t lo, int64_t hi) {
          int64_t local = 0;
          for (int64_t i = lo; i < hi; ++i) local += i;
          sum += local;
        },
        /*grain=*/1);
    total += sum.load();
  }
  EXPECT_EQ(total, 200 * (63 * 64 / 2));
}

TEST(ParallelReduceOrderedTest, EmptyRangeReturnsIdentity) {
  ThreadPool pool(4);
  const double result = ParallelReduceOrdered(
      pool, 0, 0, 16, 3.5,
      [](int64_t, int64_t) { return 100.0; },
      [](double& acc, double&& part) { acc += part; });
  EXPECT_EQ(result, 3.5);
}

TEST(ParallelReduceOrderedTest, SumMatchesSerialAtAnyPoolSize) {
  // Float accumulation over a fixed grid: the partial-sum boundaries depend
  // only on the grain, so pools of different sizes must agree bitwise.
  constexpr int64_t kN = 10000;
  std::vector<float> values(kN);
  for (int64_t i = 0; i < kN; ++i) {
    values[i] = 1.0f / static_cast<float>(i + 1);
  }
  auto run = [&](ThreadPool& pool) {
    return ParallelReduceOrdered(
        pool, 0, kN, /*grain=*/256, 0.0f,
        [&](int64_t lo, int64_t hi) {
          float acc = 0.0f;
          for (int64_t i = lo; i < hi; ++i) acc += values[i];
          return acc;
        },
        [](float& acc, float&& part) { acc += part; });
  };
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  ThreadPool pool7(7);
  const float r1 = run(pool1);
  const float r4 = run(pool4);
  const float r7 = run(pool7);
  EXPECT_EQ(r1, r4);  // EXPECT_EQ on floats: bitwise-equal values required.
  EXPECT_EQ(r1, r7);
  EXPECT_NEAR(r1, 9.7876f, 0.01f);  // Harmonic(10000), sanity.
}

TEST(ParallelReduceOrderedTest, CombineSeesEveryChunkExactlyOnce) {
  ThreadPool pool(3);
  constexpr int64_t kN = 101;  // Odd chunk count exercises the tree's tail.
  const int64_t chunks = FixedGridChunks(kN, 10);
  EXPECT_EQ(chunks, 11);
  const int64_t count = ParallelReduceOrdered(
      pool, 0, kN, /*grain=*/10, int64_t{0},
      [](int64_t lo, int64_t hi) { return hi - lo; },
      [](int64_t& acc, int64_t&& part) { acc += part; });
  EXPECT_EQ(count, kN);
}

TEST(GlobalPoolTest, SetGlobalNumThreadsReplacesThePool) {
  ThreadPool& four = ThreadPool::SetGlobalNumThreads(4);
  EXPECT_EQ(four.num_threads(), 4);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 4);
  std::atomic<int> ran{0};
  ThreadPool::Global().ParallelFor(
      0, 4, [&](int64_t lo, int64_t hi) { ran += static_cast<int>(hi - lo); },
      /*grain=*/1);
  EXPECT_EQ(ran.load(), 4);

  ThreadPool& one = ThreadPool::SetGlobalNumThreads(1);
  EXPECT_EQ(one.num_threads(), 1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);

  // Restore the hardware default so later suites see a fresh pool.
  ThreadPool::SetGlobalNumThreads(0);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1);
}

}  // namespace
}  // namespace util
}  // namespace contratopic
