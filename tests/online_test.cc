// Tests for the §VI future-work extensions: the time-sliced corpus
// generator, decayed co-occurrence statistics, incremental training, the
// online ContraTopic wrapper, and the multi-level contrastive option.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/contratopic.h"
#include "core/online.h"
#include "embed/cooccurrence.h"
#include "embed/word_embeddings.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "tensor/backend.h"
#include "text/dynamic.h"
#include "text/synthetic.h"
#include "topicmodel/etm.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace contratopic {
namespace {

text::DynamicConfig SmallDynamicConfig() {
  text::DynamicConfig config;
  config.base = text::Preset20NG(1.0);
  config.base.num_themes = 12;
  config.base.words_per_theme = 24;
  config.base.preprocess.min_doc_frequency = 3;
  config.num_slices = 3;
  config.docs_per_slice = 250;
  config.drift = 1.0;
  return config;
}

TEST(DynamicCorpusTest, SlicesShareVocabularyAndAreNonEmpty) {
  const text::DynamicDataset dataset = GenerateDynamic(SmallDynamicConfig());
  ASSERT_EQ(dataset.slices.size(), 3u);
  for (const auto& slice : dataset.slices) {
    EXPECT_GT(slice.num_docs(), 100);
    EXPECT_EQ(slice.vocab_size(), dataset.vocab.size());
  }
}

TEST(DynamicCorpusTest, PopularityIsANormalizedDistributionPerSlice) {
  const text::DynamicDataset dataset = GenerateDynamic(SmallDynamicConfig());
  for (const auto& pop : dataset.popularity) {
    double sum = 0.0;
    for (double p : pop) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DynamicCorpusTest, DriftChangesLabelDistributionAcrossSlices) {
  const text::DynamicDataset dataset = GenerateDynamic(SmallDynamicConfig());
  // Compare label histograms of first and last slice: with drift = 1.0
  // they should differ substantially (L1 distance above a loose floor).
  auto histogram = [&](const text::BowCorpus& slice) {
    std::vector<double> h(12, 0.0);
    for (const auto& d : slice.docs()) h[d.label] += 1.0;
    for (auto& v : h) v /= slice.num_docs();
    return h;
  };
  const auto first = histogram(dataset.slices.front());
  const auto last = histogram(dataset.slices.back());
  double l1 = 0.0;
  for (size_t i = 0; i < first.size(); ++i) l1 += std::fabs(first[i] - last[i]);
  EXPECT_GT(l1, 0.3);
}

TEST(CooccurrenceScaleTest, DecaysCountsAndDocTotal) {
  text::SyntheticDataset data =
      text::GenerateSynthetic(text::Preset20NG(0.1));
  embed::CooccurrenceCounts counts(data.train.vocab_size());
  counts.AddPresence(data.train);
  const double before = counts.pair(0, 0);
  const int64_t docs_before = counts.num_docs();
  counts.Scale(0.5);
  EXPECT_NEAR(counts.pair(0, 0), before * 0.5, 1e-3);
  EXPECT_EQ(counts.num_docs(), docs_before / 2);
}

TEST(NpmiFromCountsTest, MatchesComputeOnSameCorpus) {
  text::SyntheticDataset data =
      text::GenerateSynthetic(text::Preset20NG(0.1));
  const eval::NpmiMatrix direct = eval::NpmiMatrix::Compute(data.train);
  embed::CooccurrenceCounts counts(data.train.vocab_size());
  counts.AddPresence(data.train);
  const eval::NpmiMatrix from_counts = eval::NpmiMatrix::FromCounts(counts);
  EXPECT_TRUE(
      tensor::AllClose(direct.matrix(), from_counts.matrix(), 1e-5f));
}

TEST(TrainMoreTest, ContinuesFromTrainedState) {
  text::SyntheticDataset data =
      text::GenerateSynthetic(text::Preset20NG(0.15));
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 16;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(data.train, embed_config);
  topicmodel::TrainConfig config;
  config.num_topics = 6;
  config.epochs = 2;
  config.encoder_hidden = 32;
  config.encoder_layers = 1;
  topicmodel::EtmModel model(config, embeddings);
  const double first_loss = model.Train(data.train).final_loss;
  const double more_loss = model.TrainMore(data.train, 4).final_loss;
  EXPECT_LT(more_loss, first_loss);  // Training continued, not restarted.
}

TEST(TrainMoreTest, RequiresInitialTrain) {
  text::SyntheticDataset data =
      text::GenerateSynthetic(text::Preset20NG(0.1));
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 8;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(data.train, embed_config);
  topicmodel::TrainConfig config;
  config.num_topics = 4;
  config.encoder_hidden = 16;
  config.encoder_layers = 1;
  topicmodel::EtmModel model(config, embeddings);
  EXPECT_DEATH(model.TrainMore(data.train, 1), "before TrainMore");
}

TEST(OnlineContraTopicTest, FitsStreamAndTracksDrift) {
  const text::DynamicDataset dataset = GenerateDynamic(SmallDynamicConfig());
  // Embeddings from the first slice (the "history" available at t=0).
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 24;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(dataset.slices[0], embed_config);

  core::OnlineContraTopic::Options options;
  options.train.num_topics = 8;
  options.train.epochs = 5;
  options.train.encoder_hidden = 48;
  options.train.encoder_layers = 1;
  options.contra.lambda = 20.0f;
  options.epochs_per_slice = 3;
  options.decay = 0.6;
  core::OnlineContraTopic online(embeddings, options);

  int64_t prev_docs = 0;
  for (const auto& slice : dataset.slices) {
    const auto report = online.FitSlice(slice);
    EXPECT_GT(report.stats.total_seconds, 0.0);
    EXPECT_GT(report.accumulated_docs, 0);
    prev_docs = report.accumulated_docs;
  }
  EXPECT_EQ(online.num_slices_seen(), 3);
  EXPECT_GT(prev_docs, 0);

  // After the stream, the model's topics are meaningfully coherent on the
  // final slice's co-occurrence.
  const eval::NpmiMatrix npmi =
      eval::NpmiMatrix::Compute(dataset.slices.back());
  const auto coherence = eval::PerTopicCoherence(online.Beta(), npmi);
  EXPECT_GT(eval::CoherenceAtProportion(coherence, 0.25), 0.0);

  // Theta inference works on the stream's documents.
  const tensor::Tensor theta = online.InferTheta(dataset.slices.back());
  EXPECT_EQ(theta.rows(), dataset.slices.back().num_docs());
}

TEST(MultiLevelTest, DocumentContrastTermTrains) {
  text::SyntheticDataset data =
      text::GenerateSynthetic(text::Preset20NG(0.15));
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 16;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(data.train, embed_config);
  topicmodel::TrainConfig config;
  config.num_topics = 6;
  config.epochs = 3;
  config.encoder_hidden = 32;
  config.encoder_layers = 1;
  core::ContraTopicOptions options;
  options.document_contrast_weight = 1.0f;
  auto model = core::MakeContraTopicEtm(config, embeddings, options);
  model->Train(data.train);
  const tensor::Tensor beta = model->Beta();
  for (int64_t i = 0; i < beta.numel(); ++i) {
    ASSERT_FALSE(std::isnan(beta.data()[i]));
  }
  // The multi-level objective changes training relative to topic-only.
  core::ContraTopicOptions plain;
  auto baseline = core::MakeContraTopicEtm(config, embeddings, plain);
  baseline->Train(data.train);
  EXPECT_FALSE(tensor::AllClose(beta, baseline->Beta(), 1e-6f));
}

// ---------------------------------------------------------------------------
// Determinism axis (mirrors parallel_determinism_test.cc): the online
// streaming path — decayed co-occurrence accumulation, per-slice kernel
// rebuilds, and incremental TrainMore epochs — must be bitwise-identical
// across every (kernel backend, thread count) combination. On non-x86
// hosts BestSupportedBackend() == scalar and the backend axis collapses
// to the thread axis.
// ---------------------------------------------------------------------------

struct OnlineRun {
  tensor::Tensor beta;
  tensor::Tensor theta;
  std::vector<int64_t> accumulated_docs;
  // Per-slice drift metrics; doubles compared with exact equality in the
  // determinism test (they are pure functions of beta + the kernel).
  std::vector<double> churn;
  std::vector<double> npmi;
  std::vector<double> npmi_delta;
  // Deterministic-mode telemetry lines ("online_slice" records included).
  std::vector<std::string> telemetry_lines;
};

OnlineRun RunOnlineStream(int threads) {
  util::ThreadPool::SetGlobalNumThreads(threads);
  // Everything is rebuilt per run so corpus generation, embeddings, and
  // every slice's kernel refresh all execute under the requested backend
  // and thread count.
  text::DynamicConfig config = SmallDynamicConfig();
  config.num_slices = 2;
  config.docs_per_slice = 200;
  const text::DynamicDataset dataset = GenerateDynamic(config);
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 16;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(dataset.slices[0], embed_config);

  core::OnlineContraTopic::Options options;
  options.train.num_topics = 6;
  options.train.epochs = 2;
  options.train.encoder_hidden = 32;
  options.train.encoder_layers = 1;
  options.epochs_per_slice = 2;
  options.decay = 0.6;
  core::OnlineContraTopic online(embeddings, options);
  util::RunTelemetry::Options topts;
  topts.deterministic = true;
  util::RunTelemetry telemetry(topts);
  telemetry.RecordRunStart("online_stream", {});
  online.SetTelemetry(&telemetry);

  OnlineRun run;
  for (const auto& slice : dataset.slices) {
    const auto report = online.FitSlice(slice);
    run.accumulated_docs.push_back(report.accumulated_docs);
    run.churn.push_back(report.top_word_churn);
    run.npmi.push_back(report.npmi);
    run.npmi_delta.push_back(report.npmi_delta);
  }
  run.beta = online.Beta();
  run.theta = online.InferTheta(dataset.slices.back());
  run.telemetry_lines = telemetry.lines();
  return run;
}

TEST(OnlineDeterminismTest, StreamIsBitwiseIdenticalAcrossBackendsAndThreads) {
  OnlineRun reference;
  {
    tensor::ScopedKernelBackend scoped(tensor::KernelBackendKind::kScalar);
    reference = RunOnlineStream(1);
  }
  const tensor::KernelBackendKind kinds[] = {
      tensor::KernelBackendKind::kScalar, tensor::BestSupportedBackend()};
  for (tensor::KernelBackendKind kind : kinds) {
    tensor::ScopedKernelBackend scoped(kind);
    for (int threads : {1, 4}) {
      if (kind == tensor::KernelBackendKind::kScalar && threads == 1) {
        continue;  // that is the reference run
      }
      SCOPED_TRACE(std::string(tensor::KernelBackendName(kind)) + " @ " +
                   std::to_string(threads) + " threads");
      const OnlineRun run = RunOnlineStream(threads);
      EXPECT_EQ(reference.accumulated_docs, run.accumulated_docs);
      // Drift metrics are bitwise-invariant too (exact double equality),
      // and so is the deterministic telemetry stream they are emitted to.
      EXPECT_EQ(reference.churn, run.churn);
      EXPECT_EQ(reference.npmi, run.npmi);
      EXPECT_EQ(reference.npmi_delta, run.npmi_delta);
      EXPECT_EQ(reference.telemetry_lines, run.telemetry_lines);
      ASSERT_TRUE(reference.beta.same_shape(run.beta));
      for (int64_t i = 0; i < reference.beta.numel(); ++i) {
        ASSERT_EQ(reference.beta.data()[i], run.beta.data()[i])
            << "beta element " << i;
      }
      ASSERT_TRUE(reference.theta.same_shape(run.theta));
      for (int64_t i = 0; i < reference.theta.numel(); ++i) {
        ASSERT_EQ(reference.theta.data()[i], run.theta.data()[i])
            << "theta element " << i;
      }
    }
  }
  util::ThreadPool::SetGlobalNumThreads(0);
}

TEST(OnlineDriftMetricsTest, ChurnAndNpmiDeltaAreComputedAndEmitted) {
  text::DynamicConfig config = SmallDynamicConfig();
  config.num_slices = 3;
  config.docs_per_slice = 200;
  const text::DynamicDataset dataset = GenerateDynamic(config);
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 16;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(dataset.slices[0], embed_config);

  core::OnlineContraTopic::Options options;
  options.train.num_topics = 6;
  options.train.epochs = 2;
  options.train.encoder_hidden = 32;
  options.train.encoder_layers = 1;
  options.epochs_per_slice = 2;
  options.decay = 0.6;
  core::OnlineContraTopic online(embeddings, options);
  util::RunTelemetry::Options topts;
  topts.deterministic = true;
  util::RunTelemetry telemetry(topts);
  telemetry.RecordRunStart("drift_metrics", {});
  online.SetTelemetry(&telemetry);

  std::vector<core::OnlineContraTopic::SliceReport> reports;
  for (const auto& slice : dataset.slices) {
    reports.push_back(online.FitSlice(slice));
  }

  // Slice 0 has no predecessor: churn and delta are defined as zero.
  EXPECT_EQ(reports[0].top_word_churn, 0.0);
  EXPECT_EQ(reports[0].npmi_delta, 0.0);
  EXPECT_TRUE(std::isfinite(reports[0].npmi));
  for (size_t s = 1; s < reports.size(); ++s) {
    EXPECT_GE(reports[s].top_word_churn, 0.0) << "slice " << s;
    EXPECT_LE(reports[s].top_word_churn, 1.0) << "slice " << s;
    EXPECT_TRUE(std::isfinite(reports[s].npmi)) << "slice " << s;
    // The delta chains exactly against the previous slice's coherence.
    EXPECT_EQ(reports[s].npmi_delta, reports[s].npmi - reports[s - 1].npmi)
        << "slice " << s;
  }
  // Warm-started training on a drifting stream moves at least some top
  // words after the first slice.
  double total_churn = 0.0;
  for (size_t s = 1; s < reports.size(); ++s) {
    total_churn += reports[s].top_word_churn;
  }
  EXPECT_GT(total_churn, 0.0);

  // One "online_slice" telemetry record per slice, carrying the metrics.
  int slice_records = 0;
  for (const std::string& line : telemetry.lines()) {
    if (line.find("\"name\":\"online_slice\"") == std::string::npos) continue;
    ++slice_records;
    EXPECT_NE(line.find("\"top_word_churn\":"), std::string::npos);
    EXPECT_NE(line.find("\"npmi\":"), std::string::npos);
    EXPECT_NE(line.find("\"npmi_delta\":"), std::string::npos);
    EXPECT_NE(line.find("\"accumulated_docs\":"), std::string::npos);
    // Deterministic mode: no wall-clock field in the record.
    EXPECT_EQ(line.find("\"seconds\":"), std::string::npos);
  }
  EXPECT_EQ(slice_records, 3);
}

TEST(EncodeRepresentationTest, EtmExposesDifferentiableEncoder) {
  text::SyntheticDataset data =
      text::GenerateSynthetic(text::Preset20NG(0.1));
  embed::EmbeddingConfig embed_config;
  embed_config.dimension = 8;
  const embed::WordEmbeddings embeddings =
      embed::WordEmbeddings::Train(data.train, embed_config);
  topicmodel::TrainConfig config;
  config.num_topics = 4;
  config.encoder_hidden = 16;
  config.encoder_layers = 1;
  topicmodel::EtmModel model(config, embeddings);
  std::vector<int> batch = {0, 1, 2};
  autodiff::Var h =
      model.EncodeRepresentation(data.train.NormalizedBatch(batch));
  ASSERT_TRUE(h.defined());
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 4);
  EXPECT_TRUE(h.requires_grad());
}

}  // namespace
}  // namespace contratopic
