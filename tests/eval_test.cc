#include <cmath>

#include <gtest/gtest.h>

#include "eval/clustering.h"
#include "tensor/kernels.h"
#include "eval/intrusion.h"
#include "eval/metrics.h"
#include "eval/npmi.h"
#include "text/synthetic.h"

namespace contratopic {
namespace eval {
namespace {

using tensor::Tensor;

// Corpus with two cleanly separated word clusters over 8 words.
text::BowCorpus ClusteredCorpus() {
  text::Vocabulary vocab;
  for (const char* w : {"a", "b", "c", "d", "x", "y", "z", "w"}) {
    vocab.AddWord(w);
  }
  std::vector<text::Document> docs;
  for (int i = 0; i < 40; ++i) {
    text::Document d;
    d.label = i % 2;
    if (i % 2 == 0) {
      d.entries = {{0, 1}, {1, 1}, {2, 1}, {3, 1}};
    } else {
      d.entries = {{4, 1}, {5, 1}, {6, 1}, {7, 1}};
    }
    docs.push_back(d);
  }
  return text::BowCorpus(std::move(vocab), std::move(docs), {"c0", "c1"});
}

TEST(NpmiTest, PerfectCooccurrenceScoresHigh) {
  const NpmiMatrix npmi = NpmiMatrix::Compute(ClusteredCorpus());
  // a and b always co-occur and never appear apart -> NPMI = 1.
  EXPECT_NEAR(npmi.value(0, 1), 1.0f, 1e-5f);
  // a and x never co-occur -> NPMI = -1.
  EXPECT_FLOAT_EQ(npmi.value(0, 4), -1.0f);
  // Diagonal is 1.
  EXPECT_FLOAT_EQ(npmi.value(3, 3), 1.0f);
  // Symmetric.
  EXPECT_FLOAT_EQ(npmi.value(1, 0), npmi.value(0, 1));
}

TEST(NpmiTest, ValuesBounded) {
  text::SyntheticDataset dataset =
      text::GenerateSynthetic(text::Preset20NG(0.1));
  const NpmiMatrix npmi = NpmiMatrix::Compute(dataset.train);
  for (int i = 0; i < npmi.vocab_size(); i += 37) {
    for (int j = 0; j < npmi.vocab_size(); j += 41) {
      const float v = npmi.value(i, j);
      EXPECT_GE(v, -1.0f - 1e-5f);
      EXPECT_LE(v, 1.0f + 1e-5f);
    }
  }
}

TEST(NpmiTest, SubMatrixGathersEntries) {
  const NpmiMatrix npmi = NpmiMatrix::Compute(ClusteredCorpus());
  const Tensor sub = npmi.SubMatrix({0, 4});
  EXPECT_FLOAT_EQ(sub.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(sub.at(0, 1), npmi.value(0, 4));
}

TEST(NpmiTest, MeanPairwise) {
  const NpmiMatrix npmi = NpmiMatrix::Compute(ClusteredCorpus());
  EXPECT_NEAR(npmi.MeanPairwise({0, 1, 2}), 1.0, 1e-5);
  EXPECT_NEAR(npmi.MeanPairwise({0, 4}), -1.0, 1e-5);
  EXPECT_DOUBLE_EQ(npmi.MeanPairwise({0}), 0.0);  // Needs >= 2 words.
}

TEST(MetricsTest, CoherentTopicOutscoresMixedTopic) {
  const NpmiMatrix npmi = NpmiMatrix::Compute(ClusteredCorpus());
  // Topic 0 concentrated on cluster 1; topic 1 mixes clusters.
  Tensor beta(2, 8);
  for (int w = 0; w < 4; ++w) beta.at(0, w) = 0.25f;
  beta.at(1, 0) = 0.3f;
  beta.at(1, 4) = 0.3f;
  beta.at(1, 1) = 0.2f;
  beta.at(1, 5) = 0.2f;
  const auto coherence = PerTopicCoherence(beta, npmi, 4);
  EXPECT_GT(coherence[0], coherence[1]);
  EXPECT_NEAR(coherence[0], 1.0, 1e-5);
}

TEST(MetricsTest, CoherenceAtProportionSelectsBestTopics) {
  const std::vector<double> coherence = {0.1, 0.9, 0.5, 0.3};
  EXPECT_NEAR(CoherenceAtProportion(coherence, 0.25), 0.9, 1e-9);
  EXPECT_NEAR(CoherenceAtProportion(coherence, 0.5), 0.7, 1e-9);
  EXPECT_NEAR(CoherenceAtProportion(coherence, 1.0), 0.45, 1e-9);
}

TEST(MetricsTest, DiversityDetectsDuplicateTopics) {
  // Two identical topics + one distinct topic over 60 words.
  Tensor beta(3, 60);
  for (int w = 0; w < 25; ++w) {
    beta.at(0, w) = 1.0f / 25;
    beta.at(1, w) = 1.0f / 25;  // duplicate of topic 0
    beta.at(2, 30 + w) = 1.0f / 25;
  }
  const std::vector<double> coherence = {0.5, 0.4, 0.3};
  // All three topics: 50 unique words over 75 slots.
  EXPECT_NEAR(DiversityAtProportion(beta, coherence, 1.0), 50.0 / 75.0, 1e-9);
  // Top topic alone: fully diverse.
  EXPECT_NEAR(DiversityAtProportion(beta, coherence, 1.0 / 3), 1.0, 1e-9);
}

TEST(MetricsTest, InterpretabilityCurveShape) {
  text::SyntheticDataset dataset =
      text::GenerateSynthetic(text::Preset20NG(0.1));
  const NpmiMatrix npmi = NpmiMatrix::Compute(dataset.train);
  util::Rng rng(3);
  const Tensor beta = tensor::SoftmaxRows(
      Tensor::RandNormal(10, dataset.train.vocab_size(), rng));
  const InterpretabilityCurve curve = EvaluateInterpretability(beta, npmi);
  ASSERT_EQ(curve.proportions.size(), 10u);
  ASSERT_EQ(curve.coherence.size(), 10u);
  // Coherence over best-p% topics is non-increasing in p by construction.
  for (size_t i = 1; i < curve.coherence.size(); ++i) {
    EXPECT_LE(curve.coherence[i], curve.coherence[i - 1] + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------------

TEST(KMeansTest, SeparatesObviousClusters) {
  util::Rng rng(7);
  Tensor points(60, 2);
  std::vector<int> labels(60);
  for (int i = 0; i < 60; ++i) {
    const int c = i % 3;
    labels[i] = c;
    points.at(i, 0) = static_cast<float>(10 * c + rng.Normal(0.0, 0.3));
    points.at(i, 1) = static_cast<float>(rng.Normal(0.0, 0.3));
  }
  const KMeansResult result = KMeans(points, 3, rng);
  EXPECT_NEAR(Purity(result.assignments, labels), 1.0, 1e-9);
  EXPECT_NEAR(NormalizedMutualInformation(result.assignments, labels), 1.0,
              1e-6);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  util::Rng rng(8);
  const Tensor points = Tensor::RandNormal(100, 4, rng);
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  const double inertia2 = KMeans(points, 2, rng_a).inertia;
  const double inertia10 = KMeans(points, 10, rng_b).inertia;
  EXPECT_LT(inertia10, inertia2);
}

TEST(KMeansTest, ClampClusterCountToPoints) {
  util::Rng rng(10);
  const Tensor points = Tensor::RandNormal(3, 2, rng);
  const KMeansResult result = KMeans(points, 10, rng);
  for (int a : result.assignments) EXPECT_LT(a, 3);
}

TEST(PurityTest, KnownValues) {
  // Clusters: {0,0,1}, labels {a,a,a} -> purity 1.
  EXPECT_DOUBLE_EQ(Purity({0, 0, 1}, {5, 5, 5}), 1.0);
  // Perfectly mixed.
  EXPECT_DOUBLE_EQ(Purity({0, 0, 0, 0}, {1, 1, 2, 2}), 0.5);
}

TEST(NmiTest, KnownValues) {
  // Identical partitions -> 1.
  EXPECT_NEAR(NormalizedMutualInformation({0, 0, 1, 1}, {7, 7, 3, 3}), 1.0,
              1e-9);
  // Independent partitions -> ~0.
  EXPECT_NEAR(NormalizedMutualInformation({0, 1, 0, 1}, {2, 2, 3, 3}), 0.0,
              1e-9);
}

TEST(ClusteringScoreTest, EndToEnd) {
  util::Rng rng(11);
  Tensor theta(40, 2);
  std::vector<int> labels(40);
  for (int i = 0; i < 40; ++i) {
    labels[i] = i % 2;
    theta.at(i, labels[i]) = 1.0f;
  }
  const ClusteringScore score = EvaluateClustering(theta, labels, 2, rng);
  EXPECT_NEAR(score.purity, 1.0, 1e-9);
  EXPECT_NEAR(score.nmi, 1.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Word intrusion
// ---------------------------------------------------------------------------

// Builds a beta whose topics match the corpus clusters exactly.
Tensor AlignedBeta(const text::BowCorpus& corpus) {
  Tensor beta(2, corpus.vocab_size());
  for (int w = 0; w < 4; ++w) beta.at(0, w) = 0.25f;
  for (int w = 4; w < 8; ++w) beta.at(1, w) = 0.25f;
  return beta;
}

TEST(IntrusionTest, QuestionsAreWellFormed) {
  const text::BowCorpus corpus = ClusteredCorpus();
  const NpmiMatrix npmi = NpmiMatrix::Compute(corpus);
  IntrusionConfig config;
  config.words_per_question = 3;
  const auto questions =
      GenerateIntrusionQuestions(AlignedBeta(corpus), npmi, config);
  ASSERT_FALSE(questions.empty());
  for (const auto& q : questions) {
    EXPECT_EQ(q.topic_words.size(), 3u);
    EXPECT_GE(q.intruder, 0);
    EXPECT_EQ(q.shuffled.size(), 4u);
    // Intruder is present in the shuffled list exactly once.
    int count = 0;
    for (int w : q.shuffled) {
      if (w == q.intruder) ++count;
    }
    EXPECT_EQ(count, 1);
  }
}

TEST(IntrusionTest, SimulatedAnnotatorFindsObviousIntruder) {
  const text::BowCorpus corpus = ClusteredCorpus();
  const NpmiMatrix npmi = NpmiMatrix::Compute(corpus);
  IntrusionQuestion q;
  q.topic = 0;
  q.topic_words = {0, 1, 2};  // a, b, c (cluster 1)
  q.intruder = 5;             // y (cluster 2)
  q.shuffled = {0, 5, 1, 2};
  const int answer = SimulatedAnnotatorAnswer(q, npmi);
  EXPECT_EQ(q.shuffled[answer], 5);
}

TEST(IntrusionTest, CoherentModelScoresHigherThanRandomModel) {
  text::SyntheticDataset dataset =
      text::GenerateSynthetic(text::Preset20NG(0.2));
  const NpmiMatrix train_npmi = NpmiMatrix::Compute(dataset.train);
  const NpmiMatrix test_npmi = NpmiMatrix::Compute(dataset.test);

  // "Good" beta: one topic per theme, aligned with true theme words.
  const auto themes = text::MakeThemes(30, 40);
  Tensor good_beta(20, dataset.train.vocab_size());
  for (int k = 0; k < 20; ++k) {
    float rank_weight = 0.2f;
    for (const auto& word : themes[k].words) {
      const int id = dataset.train.vocab().GetId(word);
      if (id >= 0) good_beta.at(k, id) = rank_weight;
      rank_weight *= 0.85f;
    }
  }
  // "Bad" beta: random.
  util::Rng rng(13);
  const Tensor bad_beta = tensor::SoftmaxRows(
      Tensor::RandNormal(20, dataset.train.vocab_size(), rng));

  IntrusionConfig config;
  const double good_score = WordIntrusionScore(
      GenerateIntrusionQuestions(good_beta, train_npmi, config), test_npmi);
  const double bad_score = WordIntrusionScore(
      GenerateIntrusionQuestions(bad_beta, train_npmi, config), test_npmi);
  EXPECT_GT(good_score, bad_score);
  EXPECT_GT(good_score, 0.5);
}

}  // namespace
}  // namespace eval
}  // namespace contratopic
